// Contract property tests, parameterized over EVERY tuning strategy in the
// library: admissibility of all proposals, full-width assignments,
// determinism, convergence freezing, and session accounting.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "cluster/simulated_cluster.h"
#include "cluster/trace_cluster.h"
#include "core/annealing.h"
#include "core/compass.h"
#include "core/fixed.h"
#include "core/genetic.h"
#include "core/grid_search.h"
#include "core/landscape.h"
#include "core/nelder_mead.h"
#include "core/pro.h"
#include "core/random_search.h"
#include "core/ranking_selection.h"
#include "core/round_engine.h"
#include "core/session.h"
#include "core/spsa.h"
#include "core/sro.h"
#include "core/strategy_spec.h"
#include "spec/spec.h"
#include "varmodel/pareto_noise.h"

namespace protuner::core {
namespace {

ParameterSpace mixed_space() {
  return ParameterSpace({
      Parameter::integer("i", 0, 15),
      Parameter::discrete("d", {1.0, 2.0, 4.0, 8.0}),
      Parameter::continuous("c", -1.0, 1.0),
  });
}

using Factory = std::function<TuningStrategyPtr(const ParameterSpace&)>;

struct StrategyCase {
  const char* label;
  Factory make;
};

LandscapePtr test_landscape() {
  return std::make_shared<FunctionLandscape>("contract", [](const Point& x) {
    return 1.0 + 0.05 * (x[0] - 7.0) * (x[0] - 7.0) + 0.1 * x[1] +
           0.5 * x[2] * x[2];
  });
}

class StrategyContract : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategyContract, AllProposalsAdmissibleAndFullWidth) {
  const auto space = mixed_space();
  auto strategy = GetParam().make(space);
  const auto land = test_landscape();
  constexpr std::size_t kRanks = 8;
  strategy->start(kRanks);
  for (int step = 0; step < 120; ++step) {
    const StepProposal p = strategy->propose();
    ASSERT_FALSE(p.configs.empty()) << GetParam().label;
    ASSERT_LE(p.configs.size(), kRanks) << GetParam().label;
    std::vector<double> times;
    for (const auto& c : p.configs) {
      ASSERT_TRUE(space.admissible(c))
          << GetParam().label << " step " << step;
      times.push_back(land->clean_time(c));
    }
    strategy->observe(times);
    ASSERT_TRUE(space.admissible(strategy->best_point()))
        << GetParam().label;
  }
}

TEST_P(StrategyContract, DeterministicGivenSeeds) {
  const auto space = mixed_space();
  const auto land = test_landscape();
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);

  const auto run_once = [&] {
    cluster::SimulatedCluster machine(land, noise, {.ranks = 6, .seed = 77});
    auto strategy = GetParam().make(space);
    return run_session(*strategy, machine, {.steps = 80});
  };
  const SessionResult a = run_once();
  const SessionResult b = run_once();
  EXPECT_EQ(a.total_time, b.total_time) << GetParam().label;
  EXPECT_EQ(a.best, b.best) << GetParam().label;
  EXPECT_EQ(a.step_costs, b.step_costs) << GetParam().label;
}

TEST_P(StrategyContract, ConvergedImpliesFrozenProposals) {
  const auto space = mixed_space();
  const auto land = test_landscape();
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 8, .seed = 5});
  auto strategy = GetParam().make(space);
  (void)run_session(*strategy, machine, {.steps = 500});
  if (!strategy->converged()) GTEST_SKIP() << "strategy does not certify";
  const Point frozen = strategy->best_point();
  for (int i = 0; i < 5; ++i) {
    const StepProposal p = strategy->propose();
    for (const auto& c : p.configs) EXPECT_EQ(c, frozen) << GetParam().label;
    strategy->observe(std::vector<double>(p.configs.size(), 1.0));
  }
}

TEST_P(StrategyContract, SessionAccountingIsSumOfMaxima) {
  const auto space = mixed_space();
  const auto land = test_landscape();
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.1, 1.7);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 6, .seed = 9});
  auto strategy = GetParam().make(space);
  const SessionResult r = run_session(*strategy, machine, {.steps = 60});
  double sum = 0.0;
  for (double c : r.step_costs) sum += c;
  EXPECT_NEAR(r.total_time, sum, 1e-9) << GetParam().label;
  EXPECT_NEAR(r.ntt, (1.0 - noise->rho()) * r.total_time, 1e-9)
      << GetParam().label;
  EXPECT_EQ(r.step_costs.size(), 60u);
}

// A manual RoundEngine step loop must reproduce run_session exactly — the
// whole point of the extraction is that every driver shares one lifecycle.
TEST_P(StrategyContract, EngineLoopMatchesRunSessionOnSimulatedCluster) {
  const auto space = mixed_space();
  const auto land = test_landscape();
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  constexpr std::size_t kSteps = 60;

  cluster::SimulatedCluster machine_a(land, noise, {.ranks = 6, .seed = 21});
  auto strategy_a = GetParam().make(space);
  const SessionResult via_session =
      run_session(*strategy_a, machine_a, {.steps = kSteps});

  cluster::SimulatedCluster machine_b(land, noise, {.ranks = 6, .seed = 21});
  auto strategy_b = GetParam().make(space);
  RoundEngineOptions eo;
  eo.width = 6;
  RoundEngine engine(*strategy_b, eo);
  for (std::size_t k = 0; k < kSteps; ++k) engine.step(machine_b);
  const SessionResult via_engine = engine.result();

  EXPECT_EQ(via_engine.best, via_session.best) << GetParam().label;
  EXPECT_EQ(via_engine.total_time, via_session.total_time)
      << GetParam().label;
  EXPECT_EQ(via_engine.step_costs, via_session.step_costs)
      << GetParam().label;
  EXPECT_EQ(via_engine.convergence_step, via_session.convergence_step)
      << GetParam().label;
}

TEST_P(StrategyContract, EngineLoopMatchesRunSessionOnTraceCluster) {
  const auto space = mixed_space();
  const auto land = test_landscape();
  constexpr std::size_t kSteps = 60;
  cluster::TraceClusterConfig cfg;
  cfg.ranks = 6;
  cfg.seed = 33;

  cluster::TraceCluster machine_a(land, cfg);
  auto strategy_a = GetParam().make(space);
  const SessionResult via_session =
      run_session(*strategy_a, machine_a, {.steps = kSteps});

  cluster::TraceCluster machine_b(land, cfg);
  auto strategy_b = GetParam().make(space);
  RoundEngineOptions eo;
  eo.width = 6;
  RoundEngine engine(*strategy_b, eo);
  for (std::size_t k = 0; k < kSteps; ++k) engine.step(machine_b);
  const SessionResult via_engine = engine.result();

  EXPECT_EQ(via_engine.best, via_session.best) << GetParam().label;
  EXPECT_EQ(via_engine.total_time, via_session.total_time)
      << GetParam().label;
  EXPECT_EQ(via_engine.step_costs, via_session.step_costs)
      << GetParam().label;
}

// Fuzz the propose_into contract: recycled buffers are OVERWRITTEN, never
// appended to, whatever junk they held before the call.  A twin strategy
// driven through propose() must see exactly the same assignments.
TEST_P(StrategyContract, ProposeIntoOverwritesNeverAppends) {
  const auto space = mixed_space();
  const auto land = test_landscape();
  auto via_propose = GetParam().make(space);
  auto via_into = GetParam().make(space);
  constexpr std::size_t kRanks = 8;
  via_propose->start(kRanks);
  via_into->start(kRanks);
  std::vector<Point> buf;
  for (int step = 0; step < 80; ++step) {
    // Dirty the recycled buffer with garbage of a step-dependent size:
    // sometimes empty, sometimes longer than any proposal, sometimes with
    // wrong-dimension points.
    buf.assign(static_cast<std::size_t>(step * 5) % 13,
               Point{1e9, -1e9, 7.0, 8.0});
    const StepProposal expected = via_propose->propose();
    via_into->propose_into(buf);
    ASSERT_EQ(buf, expected.configs) << GetParam().label << " step " << step;
    std::vector<double> times;
    for (const auto& c : expected.configs) times.push_back(land->clean_time(c));
    via_propose->observe(times);
    via_into->observe(times);
  }
}

TEST_P(StrategyContract, ImprovesOrMatchesCenterNoiseFree) {
  const auto space = mixed_space();
  const auto land = test_landscape();
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 8, .seed = 10});
  auto strategy = GetParam().make(space);
  const SessionResult r = run_session(*strategy, machine, {.steps = 400});
  EXPECT_LE(r.best_clean, land->clean_time(space.center()) + 1e-9)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyContract,
    ::testing::Values(
        StrategyCase{"pro",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       return std::make_unique<ProStrategy>(s, ProOptions{});
                     }},
        StrategyCase{"pro_k3",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       ProOptions o;
                       o.samples = 3;
                       return std::make_unique<ProStrategy>(s, o);
                     }},
        StrategyCase{"pro_minimal_stale",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       ProOptions o;
                       o.use_2n_simplex = false;
                       o.refresh_best = false;
                       return std::make_unique<ProStrategy>(s, o);
                     }},
        StrategyCase{"pro_adaptive",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       ProOptions o;
                       o.adaptive_samples = true;
                       return std::make_unique<ProStrategy>(s, o);
                     }},
        StrategyCase{"pro_replicas",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       ProOptions o;
                       o.samples = 2;
                       o.parallel_replicas = true;
                       return std::make_unique<ProStrategy>(s, o);
                     }},
        StrategyCase{"sro",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       return std::make_unique<SroStrategy>(s, SroOptions{});
                     }},
        StrategyCase{"nelder_mead",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       NelderMeadOptions o;
                       o.max_iterations = 120;
                       return std::make_unique<NelderMeadStrategy>(s, o);
                     }},
        StrategyCase{"compass",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       return std::make_unique<CompassStrategy>(
                           s, CompassOptions{});
                     }},
        StrategyCase{"annealing",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       AnnealingOptions o;
                       o.seed = 123;
                       return std::make_unique<AnnealingStrategy>(s, o);
                     }},
        StrategyCase{"genetic",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       GeneticOptions o;
                       o.seed = 123;
                       return std::make_unique<GeneticStrategy>(s, o);
                     }},
        StrategyCase{"random",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       return std::make_unique<RandomSearchStrategy>(s, 123);
                     }},
        StrategyCase{"grid",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       GridSearchOptions o;
                       o.continuous_levels = 3;
                       return std::make_unique<GridSearchStrategy>(s, o);
                     }},
        StrategyCase{"fixed",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       return std::make_unique<FixedStrategy>(s.center());
                     }},
        StrategyCase{"spsa",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       SpsaOptions o;
                       o.seed = 123;
                       return std::make_unique<SpsaStrategy>(s, o);
                     }},
        StrategyCase{"rs_min",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       RankingSelectionOptions o;
                       o.seed = 123;
                       return std::make_unique<RankingSelectionStrategy>(s,
                                                                         o);
                     }},
        StrategyCase{"rs_mean",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       RankingSelectionOptions o;
                       o.estimator = EstimatorKind::kMean;
                       o.seed = 123;
                       return std::make_unique<RankingSelectionStrategy>(s,
                                                                         o);
                     }},
        // Spec-constructed twins: the factory path must satisfy the same
        // contracts as direct construction.
        StrategyCase{"spec_spsa",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       return make_strategy("spsa:a=0.3,c=0.15", s, 123);
                     }},
        StrategyCase{"spec_rs",
                     [](const ParameterSpace& s) -> TuningStrategyPtr {
                       return make_strategy("rs:m=12,n0=3", s, 123);
                     }}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return info.param.label;
    });

// ------------------------------------------------------- spec round trips

// The registry's design law: parse(to_string(s)) == s, and every entry's
// documented example constructs a working strategy whose first proposal is
// admissible.  Covers every registered strategy, including spsa and rs.
TEST(StrategySpecs, EveryRegisteredExampleRoundTripsAndConstructs) {
  const auto space = mixed_space();
  const auto& reg = strategy_registry();
  ASSERT_GE(reg.entries().size(), 11u);
  for (const auto& entry : reg.entries()) {
    SCOPED_TRACE(entry.name);
    const spec::Spec parsed = spec::parse(entry.example);
    EXPECT_EQ(spec::parse(spec::to_string(parsed)), parsed)
        << "round trip failed for " << entry.example;
    auto strategy = make_strategy(parsed, space, 7);
    ASSERT_NE(strategy, nullptr);
    strategy->start(4);
    const StepProposal p = strategy->propose();
    ASSERT_FALSE(p.configs.empty());
    for (const auto& c : p.configs) EXPECT_TRUE(space.admissible(c));
  }
}

// Bare names (no options) must construct with defaults for every entry and
// every alias.
TEST(StrategySpecs, BareNamesAndAliasesConstruct) {
  const auto space = mixed_space();
  for (const auto& entry : strategy_registry().entries()) {
    for (std::string name : entry.aliases) {
      auto s = make_strategy(name, space, 7);
      ASSERT_NE(s, nullptr) << name;
    }
    auto s = make_strategy(entry.name, space, 7);
    ASSERT_NE(s, nullptr) << entry.name;
  }
}

}  // namespace
}  // namespace protuner::core
