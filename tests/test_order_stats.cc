// Tests for the order-statistics layer — the analytic backbone of the
// paper's min-of-K estimator (Section 5).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/common_distributions.h"
#include "stats/order_stats.h"
#include "stats/pareto.h"
#include "util/rng.h"
#include "util/summary.h"

namespace protuner::stats {
namespace {

TEST(MinSurvival, PowerLaw) {
  // Eq. 11: P[min > x] = Q(x)^k.
  const Pareto p(2.0, 1.0);
  const double q1 = 1.0 - p.cdf(3.0);
  EXPECT_NEAR(min_survival(p, 4, 3.0), std::pow(q1, 4), 1e-12);
}

TEST(MinSurvival, KOneIsPlainSurvival) {
  const Exponential e(1.0);
  EXPECT_NEAR(min_survival(e, 1, 0.7), 1.0 - e.cdf(0.7), 1e-12);
}

TEST(MinExcess, DecreasesInK) {
  // Eq. 14: P[min exceeds x_min + eps] -> 0 as K grows.
  const Pareto p(1.7, 2.0);
  double prev = 1.0;
  for (int k = 1; k <= 10; ++k) {
    const double pr = min_excess_probability(p, k, 2.0, 0.5);
    EXPECT_LT(pr, prev);
    prev = pr;
  }
  // (2/2.5)^(1.7*10) ~= 0.022.
  EXPECT_LT(prev, 0.05);
}

TEST(MinExcess, MatchesEq20ForPareto) {
  // Eq. 20: P[min > beta + eps] = (beta / (beta+eps))^(K alpha).
  const double alpha = 1.7, beta = 2.0, eps = 0.5;
  const Pareto p(alpha, beta);
  for (int k : {1, 2, 5}) {
    EXPECT_NEAR(min_excess_probability(p, k, beta, eps),
                std::pow(beta / (beta + eps), k * alpha), 1e-12);
  }
}

TEST(SampleMin, ConvergesTowardEssentialMinimum) {
  const Pareto p(1.2, 1.0);
  util::Rng rng(5);
  double worst = 0.0;
  for (int rep = 0; rep < 200; ++rep) {
    worst = std::max(worst, sample_min(p, 50, rng));
  }
  // With K=50 the min should sit very close to beta = 1.
  EXPECT_LT(worst, 1.25);
}

TEST(SampleMeanAndMedian, BasicSanity) {
  const Uniform u(0.0, 1.0);
  util::Rng rng(6);
  std::vector<double> means, medians;
  for (int rep = 0; rep < 2000; ++rep) {
    means.push_back(sample_mean(u, 11, rng));
    medians.push_back(sample_median(u, 11, rng));
  }
  EXPECT_NEAR(util::mean(means), 0.5, 0.01);
  EXPECT_NEAR(util::mean(medians), 0.5, 0.01);
  // The median of 11 uniforms has smaller variance than a single draw.
  EXPECT_LT(util::variance(medians), 1.0 / 12.0);
}

TEST(SampleMedian, EvenCountAveragesMiddlePair) {
  // With a deterministic "distribution" the median path is fully checkable
  // via a tiny fake: use Uniform over an interval so narrow it is constant.
  const Uniform u(5.0, 5.0 + 1e-12);
  util::Rng rng(7);
  EXPECT_NEAR(sample_median(u, 4, rng), 5.0, 1e-9);
}

// The paper's core statistical claim, end to end: under heavy-tailed noise
// with infinite variance, the *average* estimator keeps misordering two
// configurations while min-of-K orders them reliably.
TEST(EstimatorOrdering, MinBeatsMeanUnderHeavyTail) {
  // f(v1) = 10 < f(v2) = 10.5; noise is Pareto with beta proportional to f
  // (Eq. 17 with rho = 0.3, alpha = 1.3: finite mean, infinite variance).
  const double rho = 0.3, alpha = 1.3;
  const auto beta = [&](double f) {
    return (alpha - 1.0) * rho / ((1.0 - rho) * alpha) * f;
  };
  const Pareto n1(alpha, beta(10.0));
  const Pareto n2(alpha, beta(10.5));

  util::Rng rng(2025);
  constexpr int kTrials = 3000;
  constexpr int kK = 5;
  int min_correct = 0;
  int mean_correct = 0;
  for (int t = 0; t < kTrials; ++t) {
    double min1 = 1e300, min2 = 1e300, sum1 = 0.0, sum2 = 0.0;
    for (int k = 0; k < kK; ++k) {
      const double y1 = 10.0 + n1.sample(rng);
      const double y2 = 10.5 + n2.sample(rng);
      min1 = std::min(min1, y1);
      min2 = std::min(min2, y2);
      sum1 += y1;
      sum2 += y2;
    }
    min_correct += (min1 < min2);
    mean_correct += (sum1 < sum2);
  }
  EXPECT_GT(min_correct, mean_correct);
  EXPECT_GT(static_cast<double>(min_correct) / kTrials, 0.75);
}

}  // namespace
}  // namespace protuner::stats
