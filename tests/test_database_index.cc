// Property tests for the indexed evaluation substrate: the k-d-tree
// interpolation path must reproduce the brute-force
// weighted-nearest-neighbour reference bit-for-bit, the batch API must
// equal scalar lookups, and the measure()-grid decimation must handle
// degenerate axes.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/landscape.h"
#include "core/parameter_space.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/rng.h"

namespace protuner::gs2 {
namespace {

/// Random point in the bounding box of `space`, deliberately NOT snapped to
/// admissibility: interpolation queries arrive from simplex arithmetic and
/// may be anywhere in the box.
core::Point random_box_point(const core::ParameterSpace& space,
                             util::Rng& rng) {
  core::Point x(space.size());
  for (std::size_t d = 0; d < space.size(); ++d) {
    x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
  }
  return x;
}

/// Random *on-grid* point (every coordinate admissible), which exercises
/// the exact-hit fast path when the point is a stored measurement and the
/// tie-handling of the k-NN selection when it is not.
core::Point random_grid_point(const core::ParameterSpace& space,
                              util::Rng& rng) {
  return space.random_point(rng);
}

TEST(DatabaseIndex, IndexedInterpolationMatchesReferenceBitForBit) {
  // >= 1000 random on/off-grid points per (stride, k, power) setting, on
  // both the GS2 space and a 4-D integer space.  EXPECT_EQ on doubles is
  // exact equality: the indexed path selects the same k neighbours in the
  // same order and accumulates with the same arithmetic as the reference,
  // so equality is bit-for-bit, not approximate.
  const Gs2Surface surface;
  const auto gs2 = gs2_space();
  const core::ParameterSpace grid4({
      core::Parameter::integer("a", 0, 9),
      core::Parameter::integer("b", 0, 9),
      core::Parameter::integer("c", 0, 9),
      core::Parameter::integer("d", 0, 9),
  });
  const core::QuadraticLandscape bowl(core::Point{4.0, 5.0, 3.0, 6.0}, 1.0,
                                      0.2);

  struct Setting {
    std::size_t stride;
    std::size_t neighbors;
    double power;
  };
  const Setting settings[] = {
      {2, 4, 2.0}, {1, 1, 2.0}, {2, 8, 1.0}, {3, 3, 3.0}};

  util::Rng rng(20260806);
  for (const Setting& s : settings) {
    const DatabaseOptions opt{.stride = s.stride,
                              .interpolation_neighbors = s.neighbors,
                              .idw_power = s.power};
    const Database dbs[] = {Database::measure(gs2, surface, opt),
                            Database::measure(grid4, bowl, opt)};
    const core::ParameterSpace* spaces[] = {&gs2, &grid4};
    for (int which = 0; which < 2; ++which) {
      const Database& db = dbs[which];
      const core::ParameterSpace& space = *spaces[which];
      for (int i = 0; i < 300; ++i) {
        const core::Point x = (i % 2 == 0) ? random_box_point(space, rng)
                                           : random_grid_point(space, rng);
        const double ref = db.interpolate_reference(x);
        EXPECT_EQ(db.interpolate_uncached(x), ref)
            << "stride=" << s.stride << " k=" << s.neighbors
            << " power=" << s.power << " which=" << which << " i=" << i;
        // The production path agrees too (exact hits resolve to the stored
        // value, which the reference-free clean_time contract requires).
        if (const auto hit = db.exact(x)) {
          EXPECT_EQ(db.clean_time(x), *hit);
        } else {
          EXPECT_EQ(db.clean_time(x), ref);
        }
      }
    }
  }
}

TEST(DatabaseIndex, BatchLookupEqualsScalarLookups) {
  const Gs2Surface surface;
  const auto space = gs2_space();
  const Database db = Database::measure(space, surface, {});
  util::Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 15));
    std::vector<core::Point> xs;
    for (std::size_t i = 0; i < n; ++i) {
      if (!xs.empty() && rng.bernoulli(0.3)) {
        xs.push_back(xs[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<long>(xs.size()) - 1))]);
      } else {
        xs.push_back(round % 2 == 0 ? random_box_point(space, rng)
                                    : random_grid_point(space, rng));
      }
    }
    std::vector<double> batch(n);
    db.clean_times(xs, batch);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch[i], db.clean_time(xs[i])) << "round=" << round;
    }
  }
}

TEST(DatabaseIndex, BatchOnFreshDatabaseMatchesScalarOnFreshDatabase) {
  // Same queries against two fresh databases: batch first vs scalar first —
  // catches any batch-order dependence in what gets memoised.
  const Gs2Surface surface;
  const auto space = gs2_space();
  const Database db_batch = Database::measure(space, surface, {});
  const Database db_scalar = Database::measure(space, surface, {});
  util::Rng rng(11);
  std::vector<core::Point> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(random_box_point(space, rng));
  xs.push_back(xs[0]);  // intra-batch duplicate
  xs.push_back(xs[3]);
  std::vector<double> batch(xs.size());
  db_batch.clean_times(xs, batch);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(batch[i], db_scalar.clean_time(xs[i]));
  }
}

TEST(DatabaseIndex, ExactHitsResolveThroughIndex) {
  const Gs2Surface surface;
  const auto space = gs2_space();
  const Database db = Database::measure(space, surface, {});
  // Every stored entry must be found exactly, through both APIs.
  std::ostringstream dump;
  db.save(dump);
  std::istringstream in(dump.str());
  const Database reloaded = Database::load(in, space, {});
  EXPECT_EQ(reloaded.entries(), db.entries());
  const core::Point probe{16.0, 8.0, 4.0};
  ASSERT_TRUE(db.exact(probe).has_value());
  EXPECT_EQ(db.clean_time(probe), *db.exact(probe));
  EXPECT_EQ(reloaded.clean_time(probe), *db.exact(probe));
}

TEST(DatabaseIndex, SignedZeroQueryHitsPositiveZeroEntry) {
  // operator== treats -0.0 == 0.0, so the hash must too — a -0.0 query
  // (easily produced by simplex arithmetic) must take the exact-hit path.
  core::ParameterSpace space({core::Parameter::integer("x", 0, 10),
                              core::Parameter::integer("y", 0, 10)});
  Database db(space, {.stride = 1, .interpolation_neighbors = 1});
  db.insert(core::Point{0.0, 5.0}, 3.5);
  db.insert(core::Point{10.0, 5.0}, 9.0);
  EXPECT_EQ(db.clean_time(core::Point{-0.0, 5.0}), 3.5);
  EXPECT_TRUE(db.exact(core::Point{-0.0, 5.0}).has_value());
}

TEST(DatabaseIndex, InsertRebuildsIndexAndInvalidatesCache) {
  core::ParameterSpace space({core::Parameter::integer("x", 0, 100)});
  Database db(space, {.stride = 1, .interpolation_neighbors = 1});
  db.insert(core::Point{0.0}, 1.0);
  EXPECT_DOUBLE_EQ(db.clean_time(core::Point{50.0}), 1.0);  // memoised
  db.insert(core::Point{60.0}, 42.0);
  EXPECT_DOUBLE_EQ(db.clean_time(core::Point{50.0}), 42.0);
  // Re-inserting an existing measurement with its existing value is a no-op
  // and must not disturb lookups.
  db.insert(core::Point{60.0}, 42.0);
  EXPECT_DOUBLE_EQ(db.clean_time(core::Point{50.0}), 42.0);
  // Overwriting with a new value takes effect.
  db.insert(core::Point{60.0}, 7.0);
  EXPECT_DOUBLE_EQ(db.clean_time(core::Point{50.0}), 7.0);
}

TEST(DatabaseIndex, DecimateAxisHandlesDegenerateAxes) {
  // Regression for the empty-axis UB: decimate_axis used to dereference
  // out.back() unconditionally, which was UB for an empty admissible set
  // (a discrete parameter with no values in an assertion-free build, or
  // any future empty-axis path).
  EXPECT_TRUE(Database::decimate_axis({}, 2).empty());
  // Single-value axis survives any stride.
  EXPECT_EQ(Database::decimate_axis({3.0}, 5),
            (std::vector<double>{3.0}));
  // Stride larger than the axis keeps first and last.
  EXPECT_EQ(Database::decimate_axis({1.0, 2.0, 3.0}, 10),
            (std::vector<double>{1.0, 3.0}));
  // Normal decimation keeps every stride-th value plus the last.
  EXPECT_EQ(Database::decimate_axis({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, 2),
            (std::vector<double>{1.0, 3.0, 5.0, 6.0}));
}

TEST(DatabaseIndex, MovedDatabaseStillAnswers) {
  const Gs2Surface surface;
  const auto space = gs2_space();
  Database db = Database::measure(space, surface, {});
  const core::Point off{16.0, 9.0, 4.0};
  const double expect = db.clean_time(off);  // builds index + memoises
  Database moved = std::move(db);
  EXPECT_EQ(moved.clean_time(off), expect);
  Database assigned(space, {});
  assigned = std::move(moved);
  EXPECT_EQ(assigned.clean_time(off), expect);
}

}  // namespace
}  // namespace protuner::gs2
