// exp::run_repetitions contract — above all the determinism guarantee the
// bench harnesses rely on: for a fixed base seed, per-rep results and any
// rep-ordered aggregate are identical for every thread count.
#include "exp/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/thread_pool.h"

namespace protuner::exp {
namespace {

constexpr std::uint64_t kSeed = 20050712;

/// A stand-in for one repetition of a harness: burns a few RNG draws and
/// returns a value that depends on both the stream and the integer seed.
double fake_experiment(const RepContext& ctx) {
  util::Rng rng = ctx.rng;  // copy: contexts are shared const
  double acc = static_cast<double>(ctx.seed % 1000003ULL);
  for (int i = 0; i < 100; ++i) acc += rng.uniform();
  return acc + static_cast<double>(ctx.rep);
}

TEST(ParallelRunner, PerRepResultsIdenticalAcrossThreadCounts) {
  const long n = 64;
  const auto serial = run_repetitions(n, kSeed, fake_experiment, 1);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(n));
  for (const unsigned threads : {2u, 8u}) {
    const auto parallel = run_repetitions(n, kSeed, fake_experiment, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(serial[i], parallel[i]) << "rep " << i << " with " << threads
                                        << " threads";
    }
  }
}

TEST(ParallelRunner, AggregateSummaryIdenticalAcrossThreadCounts) {
  const long n = 48;
  const auto fold = [&](unsigned threads) {
    const auto vals = run_repetitions(n, kSeed, fake_experiment, threads);
    double acc = 0.0;
    for (const double v : vals) acc += v;  // rep order: same FP rounding
    return acc / static_cast<double>(n);
  };
  const double serial = fold(1);
  EXPECT_EQ(serial, fold(2));
  EXPECT_EQ(serial, fold(8));
}

TEST(ParallelRunner, EndToEndSessionIdenticalAcrossThreadCounts) {
  // The real workload shape: concurrent repetitions hammering one shared
  // Database (sharded interpolation cache) must not perturb results.
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db = gs2::Database::measure(space, surface, {});
  const auto probe = [&](const RepContext& ctx) {
    util::Rng rng = ctx.rng;
    double acc = 0.0;
    for (int i = 0; i < 32; ++i) {
      core::Point x(space.size());
      for (std::size_t d = 0; d < space.size(); ++d) {
        x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
      }
      acc += db.clean_time(x);  // mostly off-grid: exercises the cache
    }
    return acc;
  };
  const auto serial = run_repetitions(16, kSeed, probe, 1);
  const auto parallel = run_repetitions(16, kSeed, probe, 8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "rep " << i;
  }
}

TEST(ParallelRunner, ContextsAreDeterministicAndDistinct) {
  const auto a = detail::make_contexts(32, kSeed);
  const auto b = detail::make_contexts(32, kSeed);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rep, static_cast<long>(i));
    EXPECT_EQ(a[i].seed, b[i].seed);
    util::Rng ra = a[i].rng, rb = b[i].rng;
    EXPECT_EQ(ra(), rb());
    seeds.insert(a[i].seed);
  }
  EXPECT_EQ(seeds.size(), a.size()) << "per-rep seeds must be distinct";
  // A different base seed gives a different family.
  const auto c = detail::make_contexts(32, kSeed + 1);
  EXPECT_NE(a[0].seed, c[0].seed);
}

TEST(ParallelRunner, ResultsArriveInRepetitionOrder) {
  const auto vals = run_repetitions(
      100, kSeed, [](const RepContext& ctx) { return ctx.rep; }, 8);
  for (long i = 0; i < 100; ++i) {
    EXPECT_EQ(vals[static_cast<std::size_t>(i)], i);
  }
}

TEST(ParallelRunner, RethrowsLowestRepException) {
  const auto run = [&](unsigned threads) -> std::string {
    try {
      run_repetitions(
          16, kSeed,
          [](const RepContext& ctx) -> int {
            if (ctx.rep == 11 || ctx.rep == 3) {
              throw std::runtime_error("rep " + std::to_string(ctx.rep));
            }
            return 0;
          },
          threads);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };
  // Deterministic error selection regardless of scheduling.
  EXPECT_EQ(run(1), "rep 3");
  EXPECT_EQ(run(4), "rep 3");
}

TEST(ParallelRunner, HandlesZeroAndNegativeCounts) {
  const auto none = run_repetitions(
      0, kSeed, [](const RepContext&) { return 1; }, 4);
  EXPECT_TRUE(none.empty());
  const auto neg = run_repetitions(
      -5, kSeed, [](const RepContext&) { return 1; }, 4);
  EXPECT_TRUE(neg.empty());
}

TEST(ParallelRunner, DefaultThreadsHonoursEnvKnob) {
  ::setenv("REPRO_THREADS", "3", 1);
  EXPECT_EQ(default_threads(), 3u);
  ::setenv("REPRO_THREADS", "0", 1);  // non-positive: fall back to hardware
  EXPECT_GE(default_threads(), 1u);
  ::unsetenv("REPRO_THREADS");
  EXPECT_GE(default_threads(), 1u);
}

TEST(ParallelRunner, MeanOverRepetitionsMatchesManualFold) {
  const auto vals = run_repetitions(20, kSeed, fake_experiment, 1);
  double acc = 0.0;
  for (const double v : vals) acc += v;
  EXPECT_EQ(mean_over_repetitions(20, kSeed, fake_experiment, 4), acc / 20.0);
}

TEST(ParallelRunner, SharedDatabaseCacheIsConsistentUnderContention) {
  // Many threads interpolating the same points must agree with the serial
  // answer (pure function + sharded cache ⇒ no torn or stale values).
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db = gs2::Database::measure(space, surface, {});
  std::vector<core::Point> pts;
  util::Rng rng(kSeed);
  for (int i = 0; i < 40; ++i) {
    core::Point x(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
    }
    pts.push_back(std::move(x));
  }
  std::vector<double> expected;
  const gs2::Database fresh = gs2::Database::measure(space, surface, {});
  for (const auto& p : pts) expected.push_back(fresh.clean_time(p));

  std::atomic<bool> mismatch{false};
  {
    util::ThreadPool pool(8);
    for (int t = 0; t < 8; ++t) {
      pool.submit([&] {
        for (std::size_t i = 0; i < pts.size(); ++i) {
          if (db.clean_time(pts[i]) != expected[i]) mismatch = true;
        }
      });
    }
  }
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace protuner::exp
