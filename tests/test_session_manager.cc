// Tests for the multi-session Harmony front end: SessionManager registry
// semantics, concurrent multi-session serving, protocol violations as hard
// errors, deadline-driven straggler handling and rank re-entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/fixed.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/session.h"
#include "core/session_log.h"
#include "exp/parallel_runner.h"
#include "harmony/session_manager.h"
#include "varmodel/noise_model.h"

namespace protuner {
namespace {

using core::Point;
using harmony::ProtocolError;
using harmony::Server;
using harmony::ServerOptions;
using harmony::SessionError;
using harmony::SessionManager;
using harmony::StragglerPolicy;

std::unique_ptr<core::FixedStrategy> fixed(double v) {
  return std::make_unique<core::FixedStrategy>(Point{v});
}

ServerOptions deadline_options(double seconds, StragglerPolicy policy) {
  ServerOptions o;
  o.report_timeout = std::chrono::duration<double>(seconds);
  o.straggler_policy = policy;
  return o;
}

/// Drives every rank of `server` through `rounds` complete rounds from one
/// thread; each rank reports rank + 1.
void drive_rounds(Server& server, std::size_t clients, std::size_t rounds) {
  for (std::size_t k = 0; k < rounds; ++k) {
    for (std::size_t r = 0; r < clients; ++r) (void)server.fetch(r);
    for (std::size_t r = 0; r < clients; ++r) {
      server.report(r, static_cast<double>(r) + 1.0);
    }
  }
}

// ------------------------------------------------------ registry lifecycle

TEST(SessionManager, CreateAttachDetachRemoveLifecycle) {
  SessionManager manager;
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_EQ(manager.find("a"), nullptr);

  const auto a = manager.create("a", fixed(1.0), 2);
  const auto b = manager.create("b", fixed(2.0), 3);
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_EQ(manager.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(manager.find("a").get(), a.get());

  EXPECT_THROW((void)manager.create("a", fixed(3.0), 1), SessionError);

  const auto a2 = manager.attach("a");
  EXPECT_EQ(a2.get(), a.get());
  EXPECT_EQ(manager.stats("a").attached, 1u);
  EXPECT_THROW((void)manager.attach("zzz"), SessionError);

  EXPECT_THROW((void)manager.remove("a"), SessionError);  // still attached
  manager.detach("a");
  EXPECT_THROW(manager.detach("a"), SessionError);  // nothing outstanding
  EXPECT_THROW(manager.detach("zzz"), SessionError);

  EXPECT_TRUE(manager.remove("a"));
  EXPECT_FALSE(manager.remove("a"));  // already gone
  EXPECT_EQ(manager.size(), 1u);

  // A removed session keeps working for holders of the shared_ptr.
  drive_rounds(*a, 2, 1);
  EXPECT_EQ(a->rounds_completed(), 1u);
}

TEST(SessionManager, StatsSnapshotLiveAccounting) {
  SessionManager manager;
  const auto s = manager.create("gs2", fixed(5.0), 4);
  drive_rounds(*s, 4, 10);

  const SessionManager::SessionStats stats = manager.stats("gs2");
  EXPECT_EQ(stats.name, "gs2");
  EXPECT_EQ(stats.strategy, "Fixed");
  EXPECT_EQ(stats.clients, 4u);
  EXPECT_EQ(stats.active_ranks, 4u);
  EXPECT_EQ(stats.attached, 0u);
  EXPECT_EQ(stats.rounds, 10u);
  EXPECT_DOUBLE_EQ(stats.total_time, 40.0);  // T_k = 4 (slowest rank)
  EXPECT_TRUE(stats.converged);              // FixedStrategy: always
  EXPECT_EQ(stats.best, (Point{5.0}));

  EXPECT_THROW((void)manager.stats("zzz"), SessionError);
  EXPECT_EQ(manager.stats_all().size(), 1u);
}

// ------------------------------------------------- concurrent multi-session

TEST(SessionManager, HostsManyConcurrentSessions) {
  // >= 4 concurrent sessions, each driven by its own set of client threads
  // (REPRO_THREADS-scaled), while the main thread polls stats snapshots.
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kRounds = 60;
  const std::size_t clients =
      std::max<std::size_t>(2, std::min<std::size_t>(4,
          static_cast<std::size_t>(exp::default_threads())));

  SessionManager manager;
  const core::ParameterSpace space(
      {core::Parameter::integer("i", 0, 15)});
  for (std::size_t s = 0; s < kSessions; ++s) {
    if (s % 2 == 0) {
      manager.create("s" + std::to_string(s), fixed(1.0), clients);
    } else {
      manager.create("s" + std::to_string(s),
                     std::make_unique<core::ProStrategy>(space,
                                                         core::ProOptions{}),
                     clients);
    }
  }

  {
    std::vector<std::jthread> workers;
    for (std::size_t s = 0; s < kSessions; ++s) {
      const std::string name = "s" + std::to_string(s);
      for (std::size_t r = 0; r < clients; ++r) {
        workers.emplace_back([&manager, name, r] {
          const auto server = manager.attach(name);
          for (std::size_t k = 0; k < kRounds; ++k) {
            const Point cfg = server->fetch(r);
            server->report(r, 1.0 + 0.1 * static_cast<double>(cfg[0]));
          }
          manager.detach(name);
        });
      }
    }
    for (int polls = 0; polls < 20; ++polls) {
      (void)manager.stats_all();
      std::this_thread::yield();
    }
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto stats = manager.stats("s" + std::to_string(s));
    EXPECT_EQ(stats.rounds, kRounds);
    EXPECT_EQ(stats.attached, 0u);
    EXPECT_EQ(stats.active_ranks, clients);
    EXPECT_GT(stats.total_time, 0.0);
    EXPECT_TRUE(manager.remove("s" + std::to_string(s)));
  }
  EXPECT_EQ(manager.size(), 0u);
}

// ------------------------------------------------------ protocol violations

TEST(Server, ProtocolViolationsAreHardErrors) {
  Server server(fixed(1.0), 2);
  EXPECT_THROW((void)server.fetch(2), ProtocolError);       // out of range
  EXPECT_THROW(server.report(7, 1.0), ProtocolError);       // out of range
  EXPECT_THROW(server.report(0, 1.0), ProtocolError);       // never fetched

  (void)server.fetch(0);
  EXPECT_THROW((void)server.fetch(0), ProtocolError);       // double fetch
  server.report(0, 1.0);
  EXPECT_THROW(server.report(0, 1.0), ProtocolError);       // double report
}

TEST(Server, RejectsNullStrategyAndZeroClients) {
  EXPECT_THROW(Server(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(Server(fixed(1.0), 0), std::invalid_argument);
}

// ------------------------------------------------------ deadline / stragglers

TEST(Server, DeadlineImputesStragglerAndShrinksSession) {
  Server server(fixed(1.0), 4,
                deadline_options(0.05, StragglerPolicy::kShrink));
  for (std::size_t r = 0; r < 4; ++r) (void)server.fetch(r);
  for (std::size_t r = 0; r < 3; ++r) {
    server.report(r, static_cast<double>(r) + 1.0);  // 1, 2, 3
  }
  // Rank 3 dies mid-round.  The deadline closes the round with its time
  // imputed as max-of-observed (3.0) × penalty (1.5) = 4.5.
  while (!server.tick()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.rounds_completed(), 1u);
  ASSERT_EQ(server.step_costs().size(), 1u);
  EXPECT_DOUBLE_EQ(server.step_costs()[0], 4.5);
  EXPECT_EQ(server.active_ranks(), 3u);  // straggler dropped

  // A too-late report for the closed round is discarded, not an error.
  server.report(3, 99.0);
  EXPECT_EQ(server.rounds_completed(), 1u);

  // The surviving ranks keep tuning at the shrunken width.
  for (std::size_t r = 0; r < 3; ++r) (void)server.fetch(r);
  for (std::size_t r = 0; r < 3; ++r) server.report(r, 2.0);
  EXPECT_EQ(server.rounds_completed(), 2u);
  EXPECT_DOUBLE_EQ(server.step_costs()[1], 2.0);
}

TEST(Server, DroppedRankReentersAtTheNextRound) {
  Server server(fixed(1.0), 4,
                deadline_options(0.2, StragglerPolicy::kShrink));
  for (std::size_t r = 0; r < 4; ++r) (void)server.fetch(r);
  for (std::size_t r = 0; r < 3; ++r) {
    server.report(r, static_cast<double>(r) + 1.0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_TRUE(server.tick());  // round 0 closed; rank 3 dropped
  ASSERT_EQ(server.active_ranks(), 3u);

  // Rank 3 comes back: its fetch re-enters the session and blocks until
  // the round it can join (round 2) opens.
  std::jthread comeback([&server] {
    (void)server.fetch(3);
    server.report(3, 4.0);
  });
  // Wait until the re-entry registered (fetch readmitted the rank) before
  // closing round 1 — otherwise round 2 could open without rank 3.
  while (server.active_ranks() != 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The survivors finish round 1 (width 3), which opens round 2 with rank
  // 3 readmitted.
  for (std::size_t r = 0; r < 3; ++r) (void)server.fetch(r);
  for (std::size_t r = 0; r < 3; ++r) server.report(r, 1.0);
  EXPECT_EQ(server.rounds_completed(), 2u);

  // Round 2 runs at full width again; rank 3's 4.0 is the step cost.
  for (std::size_t r = 0; r < 3; ++r) (void)server.fetch(r);
  for (std::size_t r = 0; r < 3; ++r) server.report(r, 1.0);
  comeback.join();
  EXPECT_EQ(server.rounds_completed(), 3u);
  EXPECT_EQ(server.active_ranks(), 4u);
  EXPECT_DOUBLE_EQ(server.step_costs()[2], 4.0);
}

TEST(Server, FailPolicyPoisonsTheSession) {
  Server server(fixed(1.0), 2,
                deadline_options(0.05, StragglerPolicy::kFail));
  (void)server.fetch(0);
  (void)server.fetch(1);
  server.report(0, 1.0);
  // Rank 1 never reports; rank 0's next fetch blocks until the deadline
  // trips and the kFail policy poisons the session.
  EXPECT_THROW((void)server.fetch(0), ProtocolError);
  EXPECT_THROW(server.report(1, 2.0), ProtocolError);
  EXPECT_THROW((void)server.fetch(0), ProtocolError);
}

// ------------------------------------------------------- observer fan-out

TEST(Server, ObserverEmitsSameTelemetryAsRunSession) {
  // The same strategy/machine driven through run_session and through the
  // Server protocol must stream byte-identical CSV telemetry.
  auto land = std::make_shared<core::FunctionLandscape>(
      "flat", [](const Point& p) { return 1.0 + p[0]; });
  constexpr std::size_t kRanks = 3;
  constexpr std::size_t kSteps = 20;

  std::ostringstream via_session;
  {
    core::CsvSessionLogger logger(via_session);
    cluster::SimulatedCluster machine(
        land, std::make_shared<varmodel::NoNoise>(), {.ranks = kRanks});
    core::FixedStrategy strategy(Point{2.0});
    core::SessionOptions so;
    so.steps = kSteps;
    so.observer = &logger;
    (void)core::run_session(strategy, machine, so);
  }

  std::ostringstream via_server;
  {
    core::CsvSessionLogger logger(via_server);
    cluster::SimulatedCluster machine(
        land, std::make_shared<varmodel::NoNoise>(), {.ranks = kRanks});
    ServerOptions options;
    options.observer = &logger;
    Server server(fixed(2.0), kRanks, options);
    for (std::size_t k = 0; k < kSteps; ++k) {
      std::vector<Point> configs;
      for (std::size_t r = 0; r < kRanks; ++r) {
        configs.push_back(server.fetch(r));
      }
      const std::vector<double> times =
          machine.run_step({configs.data(), configs.size()});
      for (std::size_t r = 0; r < kRanks; ++r) server.report(r, times[r]);
    }
  }

  EXPECT_EQ(via_session.str(), via_server.str());
  EXPECT_FALSE(via_session.str().empty());
}

}  // namespace
}  // namespace protuner
