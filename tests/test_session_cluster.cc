// Tests for the session driver's metric accounting (Eq. 1-2, Eq. 23) and
// the simulated cluster.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "cluster/simulated_cluster.h"
#include "core/fixed.h"
#include "core/landscape.h"
#include "core/session.h"
#include "varmodel/pareto_noise.h"

namespace protuner::core {
namespace {

LandscapePtr flat(double value) {
  return std::make_shared<FunctionLandscape>(
      "flat", [value](const Point&) { return value; });
}

TEST(Session, TotalTimeIsSumOfStepMaxima) {
  // A deterministic two-rank machine with different per-rank times: the
  // step cost must be the max (Eq. 1), the total the sum (Eq. 2).
  class TwoRank final : public StepEvaluator {
   public:
    void run_step_into(std::span<const Point> cfg,
                       std::span<double> out) override {
      for (std::size_t i = 0; i < cfg.size(); ++i) {
        out[i] = (i == 0) ? 2.0 : 5.0;
      }
    }
    std::size_t ranks() const override { return 2; }
  } machine;
  FixedStrategy fx(Point{0.0});
  const SessionResult res = run_session(fx, machine, {.steps = 10});
  EXPECT_DOUBLE_EQ(res.total_time, 50.0);
  ASSERT_EQ(res.step_costs.size(), 10u);
  for (double c : res.step_costs) EXPECT_DOUBLE_EQ(c, 5.0);
  EXPECT_DOUBLE_EQ(res.cumulative.back(), 50.0);
}

TEST(Session, CumulativeIsPrefixSum) {
  auto land = flat(3.0);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 2, .seed = 1});
  FixedStrategy fx(Point{0.0});
  const SessionResult res = run_session(fx, machine, {.steps = 7});
  double acc = 0.0;
  for (std::size_t k = 0; k < res.step_costs.size(); ++k) {
    acc += res.step_costs[k];
    EXPECT_DOUBLE_EQ(res.cumulative[k], acc);
  }
}

TEST(Session, NttAppliesRhoNormalization) {
  auto land = flat(2.0);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.25, 1.7);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 4, .seed = 2});
  FixedStrategy fx(Point{0.0});
  const SessionResult res = run_session(fx, machine, {.steps = 50});
  EXPECT_NEAR(res.ntt, 0.75 * res.total_time, 1e-9);
}

TEST(Session, RecordSeriesOffKeepsTotals) {
  auto land = flat(1.0);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 1, .seed = 3});
  FixedStrategy fx(Point{0.0});
  const SessionResult res =
      run_session(fx, machine, {.steps = 9, .record_series = false});
  EXPECT_DOUBLE_EQ(res.total_time, 9.0);
  EXPECT_TRUE(res.step_costs.empty());
}

TEST(Cluster, NoiseFreeTimesEqualLandscape) {
  auto land = std::make_shared<QuadraticLandscape>(Point{1.0}, 2.0, 1.0);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 3, .seed = 4});
  const Point a{1.0}, b{3.0};
  const auto t = machine.run_step(std::vector<Point>{a, b, a});
  EXPECT_DOUBLE_EQ(t[0], 2.0);
  EXPECT_DOUBLE_EQ(t[1], 6.0);
  EXPECT_DOUBLE_EQ(t[2], 2.0);
}

TEST(Cluster, NoisyTimesExceedCleanByNMin) {
  auto land = flat(4.0);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.3, 1.7);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 8, .seed = 5});
  for (int s = 0; s < 20; ++s) {
    const auto t =
        machine.run_step(std::vector<Point>(8, Point{0.0}));
    for (double x : t) EXPECT_GE(x, 4.0 + noise->n_min(4.0) - 1e-12);
  }
}

TEST(Cluster, RanksHaveIndependentStreams) {
  auto land = flat(4.0);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.3, 1.7);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 2, .seed = 6});
  int identical = 0;
  for (int s = 0; s < 100; ++s) {
    const auto t = machine.run_step(std::vector<Point>(2, Point{0.0}));
    identical += (t[0] == t[1]);
  }
  EXPECT_LT(identical, 3);
}

TEST(Cluster, ReseedReproducesRun) {
  auto land = flat(4.0);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 2, .seed = 7});
  const auto t1 = machine.run_step(std::vector<Point>(2, Point{0.0}));
  machine.reseed(7);
  const auto t2 = machine.run_step(std::vector<Point>(2, Point{0.0}));
  EXPECT_EQ(t1, t2);
}

TEST(Cluster, StepsRunCounts) {
  auto land = flat(1.0);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 2, .seed = 8});
  EXPECT_EQ(machine.steps_run(), 0u);
  (void)machine.run_step(std::vector<Point>{Point{0.0}});
  (void)machine.run_step(std::vector<Point>{Point{0.0}});
  EXPECT_EQ(machine.steps_run(), 2u);
}

TEST(Cluster, CleanTimePassthrough) {
  auto land = std::make_shared<QuadraticLandscape>(Point{0.0}, 1.0, 1.0);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 1, .seed = 9});
  EXPECT_DOUBLE_EQ(machine.clean_time(Point{2.0}), 5.0);
}

}  // namespace
}  // namespace protuner::core
