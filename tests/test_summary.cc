// Unit tests for numeric summaries.
#include "util/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace protuner::util {
namespace {

TEST(Summary, MeanOfKnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Summary, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Summary, VarianceUnbiased) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known dataset: population variance 4, sample variance 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Summary, VarianceOfSingleIsZero) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Summary, StddevIsSqrtVariance) {
  const std::vector<double> xs{1.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.0));
}

TEST(Summary, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.5, 2.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.5);
}

TEST(Summary, QuantileEndpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Summary, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Summary, MedianEvenCount) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs{1.0, 4.0, 2.0, 8.0, 5.0, 7.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 8.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(42.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 42.0);
  EXPECT_DOUBLE_EQ(rs.max(), 42.0);
}

TEST(Summarize, FullReport) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-12);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p75, 75.25, 1e-9);
  EXPECT_GT(s.p99, s.p95);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace protuner::util
