// Tests for the distribution library: analytic identities plus
// parameterized sample-vs-analytic property sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <memory>
#include <vector>

#include "stats/common_distributions.h"
#include "stats/pareto.h"
#include "util/rng.h"
#include "util/summary.h"

namespace protuner::stats {
namespace {

// ------------------------------------------------------------------- Pareto

TEST(Pareto, CdfMatchesClosedForm) {
  const Pareto p(1.7, 2.0);
  EXPECT_DOUBLE_EQ(p.cdf(1.0), 0.0);          // below beta
  EXPECT_DOUBLE_EQ(p.cdf(2.0), 0.0);          // at beta
  EXPECT_NEAR(p.cdf(4.0), 1.0 - std::pow(0.5, 1.7), 1e-12);
}

TEST(Pareto, QuantileInvertsCdf) {
  const Pareto p(1.7, 0.5);
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(p.cdf(p.quantile(q)), q, 1e-12);
  }
}

TEST(Pareto, MeanClosedForm) {
  const Pareto p(2.0, 3.0);
  EXPECT_DOUBLE_EQ(p.mean(), 6.0);  // alpha*beta/(alpha-1)
}

TEST(Pareto, InfiniteMeanBelowAlphaOne) {
  const Pareto p(0.8, 1.0);
  EXPECT_TRUE(std::isinf(p.mean()));
  EXPECT_TRUE(std::isinf(p.variance()));
}

TEST(Pareto, InfiniteVarianceBelowAlphaTwo) {
  const Pareto p(1.7, 1.0);
  EXPECT_FALSE(std::isinf(p.mean()));
  EXPECT_TRUE(std::isinf(p.variance()));
  EXPECT_TRUE(p.heavy_tailed());
}

TEST(Pareto, FiniteVarianceAboveAlphaTwo) {
  const Pareto p(3.0, 1.0);
  // Var = beta^2 alpha / ((alpha-1)^2 (alpha-2)) = 3/4.
  EXPECT_NEAR(p.variance(), 0.75, 1e-12);
  EXPECT_FALSE(p.heavy_tailed());
}

TEST(Pareto, SamplesAboveBeta) {
  const Pareto p(1.5, 2.5);
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.sample(rng), 2.5);
}

TEST(Pareto, SampleMeanConvergesWhenFinite) {
  const Pareto p(3.0, 1.0);
  util::Rng rng(7);
  double s = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) s += p.sample(rng);
  EXPECT_NEAR(s / kN, p.mean(), 0.02);
}

TEST(Pareto, MinOfKIsParetoKAlpha) {
  // Paper Eq. 19: empirical min-of-K survival matches Pareto(K alpha).
  const Pareto p(0.9, 1.0);  // infinite mean on its own
  const Pareto min_dist = p.min_of(5);
  EXPECT_DOUBLE_EQ(min_dist.alpha(), 4.5);
  EXPECT_DOUBLE_EQ(min_dist.beta(), 1.0);

  util::Rng rng(3);
  constexpr int kReps = 20000;
  int exceed = 0;
  const double z = 1.5;
  for (int r = 0; r < kReps; ++r) {
    double m = p.sample(rng);
    for (int k = 1; k < 5; ++k) m = std::min(m, p.sample(rng));
    exceed += (m > z);
  }
  const double analytic = std::pow(1.0 / z, 4.5);
  EXPECT_NEAR(static_cast<double>(exceed) / kReps, analytic, 0.01);
}

// -------------------------------------------------------------- Exponential

TEST(Exponential, CdfAndQuantile) {
  const Exponential e(2.0);
  EXPECT_NEAR(e.cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(e.quantile(e.cdf(0.7)), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(e.mean(), 0.5);
  EXPECT_DOUBLE_EQ(e.variance(), 0.25);
  EXPECT_FALSE(e.heavy_tailed());
}

// ------------------------------------------------------------------- Normal

TEST(Normal, CdfSymmetry) {
  const Normal n(0.0, 1.0);
  EXPECT_NEAR(n.cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(n.cdf(1.0) + n.cdf(-1.0), 1.0, 1e-9);
}

TEST(Normal, QuantileInverts) {
  const Normal n(5.0, 2.0);
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(n.cdf(n.quantile(q)), q, 1e-6);
  }
}

TEST(Normal, PdfPeakAtMean) {
  const Normal n(1.0, 0.5);
  EXPECT_GT(n.pdf(1.0), n.pdf(1.4));
  EXPECT_NEAR(n.pdf(1.0), 1.0 / (0.5 * std::sqrt(2.0 * std::numbers::pi)), 1e-9);
}

// ---------------------------------------------------------------- LogNormal

TEST(LogNormal, MeanVariance) {
  const LogNormal ln(0.0, 1.0);
  EXPECT_NEAR(ln.mean(), std::exp(0.5), 1e-12);
  EXPECT_NEAR(ln.variance(), (std::exp(1.0) - 1.0) * std::exp(1.0), 1e-9);
}

TEST(LogNormal, CdfQuantileRoundTrip) {
  const LogNormal ln(0.5, 0.8);
  for (double q : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(ln.cdf(ln.quantile(q)), q, 1e-6);
  }
}

// ------------------------------------------------------------------ Weibull

TEST(Weibull, ReducesToExponentialAtShapeOne) {
  const Weibull w(1.0, 2.0);
  const Exponential e(0.5);
  for (double x : {0.1, 1.0, 3.0}) EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
}

TEST(Weibull, MeanMatchesGamma) {
  const Weibull w(2.0, 1.0);
  EXPECT_NEAR(w.mean(), std::sqrt(std::numbers::pi) / 2.0, 1e-9);
}

// ------------------------------------------------------------------ Uniform

TEST(Uniform, Basics) {
  const Uniform u(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
  EXPECT_NEAR(u.variance(), 16.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.quantile(0.25), 3.0);
}

// --------------------------------------- property sweep over distributions

struct DistCase {
  const char* label;
  std::shared_ptr<Distribution> dist;
};

class DistributionProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperty, SampleQuantilesMatchAnalytic) {
  const auto& d = *GetParam().dist;
  util::Rng rng(11);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = d.sample(rng);
  std::sort(xs.begin(), xs.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double empirical = xs[static_cast<std::size_t>(q * (xs.size() - 1))];
    const double analytic = d.quantile(q);
    // Relative tolerance: 5% plus a small absolute floor.
    EXPECT_NEAR(empirical, analytic, 0.05 * std::fabs(analytic) + 0.01)
        << GetParam().label << " at q=" << q;
  }
}

TEST_P(DistributionProperty, CdfIsMonotone) {
  const auto& d = *GetParam().dist;
  double prev = -1.0;
  for (double x = 0.05; x < 20.0; x += 0.35) {
    const double c = d.cdf(x);
    EXPECT_GE(c, prev) << GetParam().label;
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DistributionProperty, PdfNonNegative) {
  const auto& d = *GetParam().dist;
  for (double x = 0.05; x < 20.0; x += 0.35) {
    EXPECT_GE(d.pdf(x), 0.0) << GetParam().label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionProperty,
    ::testing::Values(
        DistCase{"pareto17", std::make_shared<Pareto>(1.7, 1.0)},
        DistCase{"pareto30", std::make_shared<Pareto>(3.0, 0.5)},
        DistCase{"exponential", std::make_shared<Exponential>(1.5)},
        DistCase{"normal", std::make_shared<Normal>(5.0, 1.0)},
        DistCase{"lognormal", std::make_shared<LogNormal>(0.0, 0.7)},
        DistCase{"weibull", std::make_shared<Weibull>(1.5, 2.0)},
        DistCase{"uniform", std::make_shared<Uniform>(1.0, 9.0)}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace protuner::stats
