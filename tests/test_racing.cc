// Tests for racing multi-sampling: clear losers stop being re-measured
// mid-round, estimates stay complete, and PRO still converges.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/simulated_cluster.h"
#include "core/batch_state.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/session.h"
#include "varmodel/pareto_noise.h"

namespace protuner::core {
namespace {

TEST(Racing, EliminatesClearLoserAfterFirstRound) {
  BatchState::Options o;
  o.samples = 4;
  o.estimator = EstimatorKind::kMin;
  o.racing = true;
  o.racing_margin = 0.10;
  BatchState b;
  b.reset({Point{1.0}, Point{2.0}, Point{3.0}}, /*ranks=*/3, o);

  // Round 1: point 2 is 10x worse than the leader.
  ASSERT_EQ(b.next_assignment().size(), 3u);
  b.feed(std::vector<double>{1.0, 1.05, 10.0});

  // Round 2: only the two contenders remain.
  const auto a2 = b.next_assignment();
  ASSERT_EQ(a2.size(), 2u);
  EXPECT_EQ(a2[0], Point{1.0});
  EXPECT_EQ(a2[1], Point{2.0});
  b.feed(std::vector<double>{0.9, 1.2});

  // Round 3: point 1's min (1.05 -> still within 10% of 0.9? no: 1.05 >
  // 0.9*1.1 = 0.99) -> eliminated too; only the leader races on.
  const auto a3 = b.next_assignment();
  ASSERT_EQ(a3.size(), 1u);
  EXPECT_EQ(a3[0], Point{1.0});
  b.feed(std::vector<double>{1.1});

  const auto a4 = b.next_assignment();
  ASSERT_EQ(a4.size(), 1u);
  b.feed(std::vector<double>{1.0});

  ASSERT_TRUE(b.done());
  // Estimates are the min of whatever each point collected.
  EXPECT_DOUBLE_EQ(b.estimates()[0], 0.9);
  EXPECT_DOUBLE_EQ(b.estimates()[1], 1.05);
  EXPECT_DOUBLE_EQ(b.estimates()[2], 10.0);
}

TEST(Racing, NoEliminationWhenAllClose) {
  BatchState::Options o;
  o.samples = 3;
  o.racing = true;
  o.racing_margin = 0.50;
  BatchState b;
  b.reset({Point{1.0}, Point{2.0}}, 2, o);
  b.feed(std::vector<double>{1.0, 1.2});
  EXPECT_EQ(b.next_assignment().size(), 2u);  // 1.2 within 50% of 1.0
  b.feed(std::vector<double>{1.1, 1.0});
  EXPECT_EQ(b.next_assignment().size(), 2u);
  b.feed(std::vector<double>{1.0, 1.1});
  EXPECT_TRUE(b.done());
}

TEST(Racing, LeaderAlwaysKeepsSampling) {
  BatchState::Options o;
  o.samples = 5;
  o.racing = true;
  o.racing_margin = 0.0;  // maximal aggression
  BatchState b;
  b.reset({Point{1.0}, Point{2.0}, Point{3.0}}, 3, o);
  b.feed(std::vector<double>{5.0, 4.0, 3.0});
  // Margin 0: everyone above the leader's min is dropped; the leader stays.
  const auto a = b.next_assignment();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], Point{3.0});
  for (int round = 1; round < 5; ++round) {
    b.feed(std::vector<double>(b.next_assignment().size(), 3.0));
  }
  EXPECT_TRUE(b.done());
}

TEST(Racing, ProWithRacingStillFindsOptimum) {
  const ParameterSpace space({Parameter::integer("a", 0, 20),
                              Parameter::integer("b", 0, 20)});
  auto land =
      std::make_shared<QuadraticLandscape>(Point{4.0, 16.0}, 1.0, 0.2);
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 8, .seed = 1});
  ProOptions opts;
  opts.samples = 3;
  opts.racing = true;
  ProStrategy pro(space, opts);
  const SessionResult r = run_session(pro, machine, {.steps = 300});
  EXPECT_EQ(r.best, (Point{4.0, 16.0}));
}

TEST(Racing, CutsTotalTimeUnderHeavyNoiseAtEqualK) {
  // The step cost is the max over the batch; racing drops expensive losers
  // from later rounds, so Total_Time should not be worse than plain K=3
  // sampling (averaged over repetitions).
  const ParameterSpace space({Parameter::integer("a", 0, 20),
                              Parameter::integer("b", 0, 20)});
  auto land =
      std::make_shared<QuadraticLandscape>(Point{4.0, 16.0}, 2.0, 0.5);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.3, 1.7);
  double plain = 0.0, raced = 0.0;
  constexpr int kReps = 30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto seed = static_cast<std::uint64_t>(700 + rep);
    {
      cluster::SimulatedCluster m(land, noise, {.ranks = 8, .seed = seed});
      ProOptions o;
      o.samples = 3;
      ProStrategy pro(space, o);
      plain += run_session(pro, m, {.steps = 150}).total_time;
    }
    {
      cluster::SimulatedCluster m(land, noise, {.ranks = 8, .seed = seed});
      ProOptions o;
      o.samples = 3;
      o.racing = true;
      ProStrategy pro(space, o);
      raced += run_session(pro, m, {.steps = 150}).total_time;
    }
  }
  EXPECT_LE(raced, plain * 1.02);
}

}  // namespace
}  // namespace protuner::core
