// Tests for simplex geometry, ordering, degeneracy detection and the
// initial-simplex builders (§3.2.3).
#include <gtest/gtest.h>

#include "core/simplex.h"

namespace protuner::core {
namespace {

ParameterSpace box2d() {
  return ParameterSpace({Parameter::continuous("x", -10.0, 10.0),
                         Parameter::continuous("y", -10.0, 10.0)});
}

TEST(Simplex, OrderSortsByValue) {
  Simplex s({Point{0.0, 0.0}, Point{1.0, 0.0}, Point{0.0, 1.0}});
  s.set_values(std::vector<double>{3.0, 1.0, 2.0});
  s.order();
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
  EXPECT_DOUBLE_EQ(s.value(1), 2.0);
  EXPECT_DOUBLE_EQ(s.value(2), 3.0);
  EXPECT_EQ(s.best(), (Point{1.0, 0.0}));
}

TEST(Simplex, ReflectionGeometryMatchesFig2) {
  // r^j = 2 v0 - v^j around the best vertex.
  const auto space = box2d();
  Simplex s({Point{0.0, 0.0}, Point{2.0, 0.0}, Point{0.0, 2.0}});
  s.set_values(std::vector<double>{1.0, 2.0, 3.0});
  s.order();
  const auto r = s.reflections(space);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (Point{-2.0, 0.0}));
  EXPECT_EQ(r[1], (Point{0.0, -2.0}));
}

TEST(Simplex, ExpansionGeometry) {
  const auto space = box2d();
  Simplex s({Point{0.0, 0.0}, Point{2.0, 0.0}});
  s.set_values(std::vector<double>{1.0, 2.0});
  s.order();
  const auto e = s.expansions(space);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], (Point{-4.0, 0.0}));  // 3*0 - 2*2
}

TEST(Simplex, ShrinkGeometry) {
  const auto space = box2d();
  Simplex s({Point{0.0, 0.0}, Point{4.0, 2.0}});
  s.set_values(std::vector<double>{1.0, 2.0});
  s.order();
  const auto h = s.shrinks(space);
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0], (Point{2.0, 1.0}));
}

TEST(Simplex, TransformsAreProjected) {
  // Reflection through the best pushes past the boundary: must clamp.
  const auto space = box2d();
  Simplex s({Point{9.0, 0.0}, Point{-5.0, 0.0}});
  s.set_values(std::vector<double>{1.0, 2.0});
  s.order();
  const auto r = s.reflections(space);
  EXPECT_EQ(r[0], (Point{10.0, 0.0}));  // 2*9 - (-5) = 23 -> clamp
}

TEST(Simplex, CollapsedDetectsIdenticalDiscreteVertices) {
  const ParameterSpace space({Parameter::integer("a", 0, 9)});
  Simplex s({Point{4.0}, Point{4.0}, Point{4.0}});
  s.set_values(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_TRUE(s.collapsed(space));
  Simplex t({Point{4.0}, Point{5.0}});
  t.set_values(std::vector<double>{1.0, 1.0});
  EXPECT_FALSE(t.collapsed(space));
}

TEST(Simplex, CollapsedUsesToleranceForContinuous) {
  const ParameterSpace space({Parameter::continuous("x", 0.0, 1.0)});
  Simplex s({Point{0.5}, Point{0.5 + 1e-9}});
  s.set_values(std::vector<double>{1.0, 1.0});
  EXPECT_TRUE(s.collapsed(space));
}

TEST(Simplex, DegenerateWhenEdgesDontSpan) {
  // Three collinear points in 2-D.
  Simplex s({Point{0.0, 0.0}, Point{1.0, 1.0}, Point{2.0, 2.0}});
  EXPECT_TRUE(s.degenerate());
  Simplex t({Point{0.0, 0.0}, Point{1.0, 0.0}, Point{0.0, 1.0}});
  EXPECT_FALSE(t.degenerate());
}

TEST(Simplex, DegenerateWhenTooFewVertices) {
  Simplex s({Point{0.0, 0.0}, Point{1.0, 0.0}});
  EXPECT_TRUE(s.degenerate());
}

TEST(Simplex, DiameterIsMaxDistanceFromBest) {
  Simplex s({Point{0.0, 0.0}, Point{3.0, 4.0}, Point{1.0, 0.0}});
  s.set_values(std::vector<double>{1.0, 2.0, 3.0});
  s.order();
  EXPECT_DOUBLE_EQ(s.diameter(), 5.0);
}

TEST(InitialSimplex, MinimalHasNPlusOneVertices) {
  const auto space = box2d();
  const Simplex s = minimal_simplex(space, 0.2);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.degenerate());
}

TEST(InitialSimplex, Axial2NHasTwoNVertices) {
  const auto space = box2d();
  const Simplex s = axial_2n_simplex(space, 0.2);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.degenerate());
}

TEST(InitialSimplex, OffsetsMatchRelativeSize) {
  // b_i = r * range / 2; range = 20 and r = 0.2 -> offset 2 around centre 0.
  const auto space = box2d();
  const Simplex s = axial_2n_simplex(space, 0.2);
  bool found_up = false, found_dn = false;
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (s.vertex(j) == Point{2.0, 0.0}) found_up = true;
    if (s.vertex(j) == Point{-2.0, 0.0}) found_dn = true;
  }
  EXPECT_TRUE(found_up);
  EXPECT_TRUE(found_dn);
}

TEST(InitialSimplex, NonDegenerateOnIntegerGridEvenForTinyR) {
  // Centre-directed rounding would collapse r=0.01 onto the centre; the
  // builder must fall back to the adjacent admissible value (§3.2.3
  // requires a spanning initial simplex).
  const ParameterSpace space({Parameter::integer("a", 0, 100),
                              Parameter::integer("b", 0, 100)});
  const Simplex s = axial_2n_simplex(space, 0.01);
  EXPECT_FALSE(s.degenerate());
  for (std::size_t j = 0; j < s.size(); ++j) {
    EXPECT_TRUE(space.admissible(s.vertex(j)));
  }
}

TEST(InitialSimplex, AllVerticesAdmissibleOnMixedSpace) {
  const ParameterSpace space({
      Parameter::discrete("ntheta", {16.0, 18.0, 20.0, 22.0}),
      Parameter::integer("negrid", 8, 32),
      Parameter::continuous("frac", 0.0, 1.0),
  });
  for (double r : {0.05, 0.2, 0.5, 0.9}) {
    const Simplex s2n = axial_2n_simplex(space, r);
    const Simplex smin = minimal_simplex(space, r);
    for (std::size_t j = 0; j < s2n.size(); ++j) {
      EXPECT_TRUE(space.admissible(s2n.vertex(j))) << "r=" << r;
    }
    for (std::size_t j = 0; j < smin.size(); ++j) {
      EXPECT_TRUE(space.admissible(smin.vertex(j))) << "r=" << r;
    }
  }
}

}  // namespace
}  // namespace protuner::core
