// Tests for the sequential strategies: SRO (Algorithm 1) and the
// Nelder-Mead baseline, including the sequential-vs-parallel contrast the
// paper draws.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/simulated_cluster.h"
#include "core/landscape.h"
#include "core/nelder_mead.h"
#include "core/pro.h"
#include "core/session.h"
#include "core/sro.h"
#include "varmodel/noise_model.h"

namespace protuner::core {
namespace {

ParameterSpace int_box() {
  return ParameterSpace(
      {Parameter::integer("a", 0, 20), Parameter::integer("b", 0, 20)});
}

cluster::SimulatedCluster clean_cluster(LandscapePtr land, std::size_t ranks) {
  return cluster::SimulatedCluster(
      std::move(land), std::make_shared<varmodel::NoNoise>(),
      {.ranks = ranks, .seed = 3});
}

TEST(Sro, FindsQuadraticMinimum) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{7.0, 13.0}, 1.0, 0.2);
  auto machine = clean_cluster(land, 1);
  SroStrategy sro(space, {});
  const SessionResult res = run_session(sro, machine, {.steps = 600});
  EXPECT_EQ(res.best, (Point{7.0, 13.0}));
}

TEST(Sro, OneNewEvaluationPerStepRestPadded) {
  // SRO is sequential: one *new* point per step; the remaining ranks are
  // padded with the incumbent so the step cost stays a max over all ranks.
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{5.0, 5.0}, 1.0, 0.2);
  SroStrategy sro(space, {});
  sro.start(8);
  for (int i = 0; i < 50; ++i) {
    const StepProposal p = sro.propose();
    ASSERT_EQ(p.configs.size(), 8u);
    // All padded slots carry the same (incumbent) configuration.
    for (std::size_t r = 2; r < 8; ++r) EXPECT_EQ(p.configs[r], p.configs[1]);
    std::vector<double> times;
    for (const auto& c : p.configs) times.push_back(land->clean_time(c));
    sro.observe(times);
  }
}

TEST(Sro, SlowerThanProPerTimeStepBudget) {
  // The parallelism claim (§3.2): with the same step budget and n ranks,
  // PRO reaches a no-worse configuration than SRO.
  const auto space = int_box();
  auto land = std::make_shared<MultimodalLandscape>(Point{16.0, 4.0}, 1.0,
                                                    0.3, 0.2);
  auto m_pro = clean_cluster(land, 8);
  auto m_sro = clean_cluster(land, 8);
  ProStrategy pro(space, {});
  SroStrategy sro(space, {});
  const SessionResult r_pro = run_session(pro, m_pro, {.steps = 60});
  const SessionResult r_sro = run_session(sro, m_sro, {.steps = 60});
  EXPECT_LE(r_pro.best_clean, r_sro.best_clean + 1e-9);
}

TEST(Sro, ConvergesAndFreezes) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{4.0, 4.0}, 1.0, 0.5);
  auto machine = clean_cluster(land, 1);
  SroStrategy sro(space, {});
  const SessionResult res = run_session(sro, machine, {.steps = 900});
  EXPECT_TRUE(res.convergence_step.has_value());
  const StepProposal p = sro.propose();
  EXPECT_EQ(p.configs[0], res.best);
}

TEST(NelderMead, FindsQuadraticMinimumOnContinuousBox) {
  const ParameterSpace space({Parameter::continuous("x", -5.0, 5.0),
                              Parameter::continuous("y", -5.0, 5.0)});
  auto land = std::make_shared<QuadraticLandscape>(Point{1.5, -2.0}, 1.0, 1.0);
  auto machine = clean_cluster(land, 1);
  NelderMeadStrategy nm(space, {});
  const SessionResult res = run_session(nm, machine, {.steps = 400});
  EXPECT_NEAR(res.best[0], 1.5, 0.2);
  EXPECT_NEAR(res.best[1], -2.0, 0.2);
}

TEST(NelderMead, SequentialOneNewEvalPerStep) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{5.0, 5.0}, 1.0, 0.2);
  NelderMeadStrategy nm(space, {});
  nm.start(8);
  for (int i = 0; i < 30; ++i) {
    const StepProposal p = nm.propose();
    ASSERT_EQ(p.configs.size(), 8u);
    for (std::size_t r = 2; r < 8; ++r) EXPECT_EQ(p.configs[r], p.configs[1]);
    std::vector<double> times;
    for (const auto& c : p.configs) times.push_back(land->clean_time(c));
    nm.observe(times);
  }
}

TEST(NelderMead, IterationCapFreezes) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{5.0, 5.0}, 1.0, 0.2);
  auto machine = clean_cluster(land, 1);
  NelderMeadOptions opts;
  opts.max_iterations = 10;
  NelderMeadStrategy nm(space, opts);
  const SessionResult res = run_session(nm, machine, {.steps = 300});
  EXPECT_TRUE(nm.converged());
  EXPECT_TRUE(res.convergence_step.has_value());
  EXPECT_LE(nm.iterations(), 10u);
}

TEST(NelderMead, ImprovesOverCenterOnGs2LikeIntegerSpace) {
  const auto space = int_box();
  auto land = std::make_shared<MultimodalLandscape>(Point{15.0, 5.0}, 1.0,
                                                    0.2, 0.15);
  auto machine = clean_cluster(land, 1);
  NelderMeadStrategy nm(space, {});
  const SessionResult res = run_session(nm, machine, {.steps = 400});
  EXPECT_LE(res.best_clean, land->clean_time(space.center()) + 1e-12);
}

}  // namespace
}  // namespace protuner::core
