// obs:: metrics registry contract tests: log-bucket boundaries, quantiles of
// a known heavy mixture, registry identity/kind rules, the Prometheus
// renderer, snapshot-while-recording under REPRO_THREADS hammering (the
// tier1-tsan entry for this file), the harmony::Server protocol-error
// counter regression, and — with a counting global operator new, the
// test_step_alloc pattern — proof that recording on a pre-registered
// instrument allocates nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/fixed.h"
#include "harmony/server.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace protuner {
namespace {

using obs::Histogram;
using obs::InstrumentSnapshot;
using obs::Registry;

TEST(HistogramBuckets, ExactPowersOfTwoLandOnTheirLowerEdge) {
  for (int e = Histogram::kMinExp; e <= Histogram::kMaxExp; ++e) {
    const double v = std::ldexp(1.0, e);
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_EQ(Histogram::bucket_lower(i), v) << "2^" << e;
    EXPECT_GT(Histogram::bucket_upper(i), v) << "2^" << e;
  }
  // Just below a power of two belongs to the previous bucket.
  const std::size_t at_one = Histogram::bucket_index(1.0);
  EXPECT_EQ(Histogram::bucket_index(std::nextafter(1.0, 0.0)), at_one - 1);
}

TEST(HistogramBuckets, EdgeCasesGoToUnderflowAndOverflow) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMinExp - 1)),
            0u);
  const std::size_t last = Histogram::kBucketCount - 1;
  EXPECT_EQ(Histogram::bucket_index(1e30), last);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            last);
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(last)));
  EXPECT_EQ(Histogram::bucket_lower(0), 0.0);
}

TEST(HistogramBuckets, ParetoSamplesLandWhereIlogbSaysTheyShould) {
  // Heavy-tailed inputs (alpha = 1.1: infinite variance) spread across many
  // decades; every one must land in the bucket its exponent names.
  util::Rng rng(7);
  Histogram h;
  std::vector<std::uint64_t> expected(Histogram::kBucketCount, 0);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    const double v = 0.01 * std::pow(1.0 - u, -1.0 / 1.1);
    h.record(v);
    std::size_t b = 0;
    if (v >= std::ldexp(1.0, Histogram::kMinExp)) {
      const int e = std::min(std::ilogb(v), Histogram::kMaxExp);
      b = static_cast<std::size_t>(e - Histogram::kMinExp + 1);
    }
    ++expected[b];
    EXPECT_GE(v, Histogram::bucket_lower(Histogram::bucket_index(v)));
    EXPECT_LT(v, Histogram::bucket_upper(Histogram::bucket_index(v)));
  }
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 20000u);
  for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
    EXPECT_EQ(s.counts[b], expected[b]) << "bucket " << b;
  }
}

TEST(HistogramQuantiles, KnownMixtureQuantilesLandInTheRightBuckets) {
  // 500 x 1, 400 x 100, 90 x 5000, 10 x 1e9 — a Pareto-flavoured mixture
  // with a tail 9 decades above the median.
  Histogram h;
  for (int i = 0; i < 500; ++i) h.record(1.0);
  for (int i = 0; i < 400; ++i) h.record(100.0);
  for (int i = 0; i < 90; ++i) h.record(5000.0);
  for (int i = 0; i < 10; ++i) h.record(1e9);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.max, 1e9);
  // The 500th sample sits exactly at the top of bucket [1, 2): linear
  // interpolation reports the bucket's upper edge.
  EXPECT_GE(s.p50(), 1.0);
  EXPECT_LE(s.p50(), 2.0);
  EXPECT_GE(s.p90(), 64.0);
  EXPECT_LE(s.p90(), 128.0);
  EXPECT_GE(s.p99(), 4096.0);
  EXPECT_LE(s.p99(), 8192.0);
  // p99.9 reaches the 1e9 spike's bucket [2^29, 2^30), interpolated toward
  // the exact max.
  EXPECT_GE(s.p999(), std::ldexp(1.0, 29));
  EXPECT_LE(s.p999(), 1e9);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1e9);
  EXPECT_EQ(Histogram().snapshot().p99(), 0.0) << "empty histogram";
}

TEST(RegistryContract, SameNameAndLabelsIsTheSameInstrument) {
  Registry reg;
  obs::Counter& a = reg.counter("hits", "help text");
  obs::Counter& b = reg.counter("hits");
  EXPECT_EQ(&a, &b);
  obs::Counter& other = reg.counter("hits", "", {{"tier", "memo"}});
  EXPECT_NE(&a, &other);
  a.add(3);
  other.add();
  EXPECT_THROW(reg.histogram("hits"), std::logic_error)
      << "kind mismatch on an existing name must throw";
  EXPECT_EQ(reg.size(), 2u);

  reg.gauge("depth").set(-4);
  reg.histogram("lat", "", {{"session", "s1"}}).record(2.0);
  const obs::RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.instruments.size(), 4u);
  const InstrumentSnapshot* hits = snap.find("hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->value, 3.0);
  const InstrumentSnapshot* lat = snap.find("lat", "s1");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, 1u);
  EXPECT_EQ(snap.find("lat", "nope"), nullptr);

  const obs::RegistrySnapshot filtered = reg.snapshot("session", "s1");
  EXPECT_EQ(filtered.instruments.size(), 1u);
  EXPECT_EQ(filtered.instruments[0].name, "lat");
}

TEST(RegistryContract, PrometheusRenderIsWellFormed) {
  Registry reg;
  reg.counter("protuner_test_total", "a counter", {{"session", "a\"b"}})
      .add(7);
  reg.gauge("protuner_test_depth").set(-2);
  obs::Histogram& h = reg.histogram("protuner_test_ns", "latency");
  for (int i = 0; i < 100; ++i) h.record(1000.0);
  std::ostringstream out;
  obs::render_prometheus(out, reg.snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE protuner_test_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("protuner_test_total{session=\"a\\\"b\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("protuner_test_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE protuner_test_ns summary"), std::string::npos);
  EXPECT_NE(text.find("protuner_test_ns{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("protuner_test_ns_count 100"), std::string::npos);
  EXPECT_NE(text.find("protuner_test_ns_max 1000"), std::string::npos);
  EXPECT_EQ(text.find("protuner_test_ns_sum"), std::string::npos)
      << "no mean under heavy tails, so no _sum series";
}

TEST(RegistryMerge, MergeFromAccumulatesUnderExtraLabels) {
  // The server half of the fleet telemetry push: deltas from client
  // registries land in the serving registry under {client="<rank>"}.
  Registry sender;
  sender.counter("ops_total", "pushed ops").add(5);
  sender.gauge("depth").set(3);
  obs::Histogram& h = sender.histogram("lat_ns", "pushed latency");
  h.record(100.0);
  h.record(7000.0);
  const obs::RegistrySnapshot delta = sender.snapshot();

  Registry receiver;
  receiver.merge_from(delta, {{"client", "3"}});
  receiver.merge_from(delta, {{"client", "3"}});  // a second identical push
  receiver.merge_from(delta, {{"client", "9"}});  // a different sender

  const obs::RegistrySnapshot merged = receiver.snapshot();
  std::uint64_t series = 0;
  for (const InstrumentSnapshot& inst : merged.instruments) {
    bool client3 = false;
    bool client9 = false;
    for (const auto& [k, v] : inst.labels) {
      client3 |= k == "client" && v == "3";
      client9 |= k == "client" && v == "9";
    }
    ASSERT_TRUE(client3 || client9) << inst.name << " lost the push label";
    ++series;
    if (inst.name == "ops_total") {
      // Counters accumulate across pushes; senders ship deltas.
      EXPECT_EQ(inst.value, client3 ? 10.0 : 5.0);
      EXPECT_EQ(inst.help, "pushed ops") << "help text must survive the wire";
    }
    if (inst.name == "depth") {
      EXPECT_EQ(inst.value, 3.0) << "gauges take the incoming level";
    }
    if (inst.name == "lat_ns") {
      EXPECT_EQ(inst.hist.count, client3 ? 4u : 2u);
      EXPECT_DOUBLE_EQ(inst.hist.max, 7000.0);
    }
  }
  EXPECT_EQ(series, 6u) << "three instruments x two senders";
}

TEST(RegistryMerge, MergeIsCommutativeAndTakesMaxOfMax) {
  Registry a_src;
  a_src.histogram("lat").record(100.0);
  a_src.counter("n").add(2);
  Registry b_src;
  obs::Histogram& bh = b_src.histogram("lat");
  bh.record(900.0);
  bh.record(900.0);
  b_src.counter("n").add(5);
  const obs::RegistrySnapshot a = a_src.snapshot();
  const obs::RegistrySnapshot b = b_src.snapshot();

  Registry ab;
  ab.merge_from(a);
  ab.merge_from(b);
  Registry ba;
  ba.merge_from(b);
  ba.merge_from(a);
  for (const Registry* r : {&ab, &ba}) {
    const obs::RegistrySnapshot snap = r->snapshot();
    const InstrumentSnapshot* lat = snap.find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->hist.count, 3u);
    EXPECT_DOUBLE_EQ(lat->hist.max, 900.0) << "max-of-max, not last-wins";
    EXPECT_EQ(snap.find("n")->value, 7.0);
  }
}

TEST(RegistryMerge, ReMergingAMergedSeriesNeverMintsNewIdentities) {
  // The echo-loop guard: a pusher that snapshots a registry it is merged
  // into (one process playing both ends, as the loadgen's loopback mode
  // does) re-ships already-merged {client=...} series.  Re-merging those
  // under another client label must fold into the existing series — never
  // append a second `client` key, which would grow the registry by the
  // size of everything previously merged, on every push.
  Registry server;
  Registry client0;
  client0.counter("pushed_total").add(3);
  server.merge_from(client0.snapshot(), {{"client", "0"}});

  // The echo: a snapshot of the server itself, pushed back as client 1.
  const obs::RegistrySnapshot echo = server.snapshot();
  server.merge_from(echo, {{"client", "1"}});
  server.merge_from(server.snapshot(), {{"client", "1"}});

  const obs::RegistrySnapshot snap = server.snapshot();
  std::size_t series = 0;
  for (const InstrumentSnapshot& s : snap.instruments) {
    if (s.name != "pushed_total") continue;
    ++series;
    std::size_t client_keys = 0;
    for (const auto& [k, v] : s.labels) client_keys += k == "client";
    EXPECT_EQ(client_keys, 1u) << "a series must carry one client label";
  }
  EXPECT_EQ(series, 1u) << "echoed merges must fold, not mint";
}

TEST(RegistryMerge, KindMismatchWithALocalInstrumentThrows) {
  Registry receiver;
  receiver.counter("clash", "", {{"client", "1"}}).add(1);
  Registry sender;
  sender.histogram("clash").record(1.0);
  EXPECT_THROW(receiver.merge_from(sender.snapshot(), {{"client", "1"}}),
               std::logic_error);
}

TEST(RegistryMerge, HostileValuesNeverReachTheIntegerCasts) {
  // Pushed snapshots arrive off the wire, so any double can show up.  A
  // NaN, infinite, negative, or > 2^64 counter delta must be dropped (the
  // uint64 cast would be UB); gauges clamp into int64 range and drop only
  // NaN; a +inf histogram max must not win the CAS-max forever.
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  obs::RegistrySnapshot push;
  const auto add = [&push](obs::InstrumentKind kind, const char* name,
                           double value) {
    InstrumentSnapshot s;
    s.kind = kind;
    s.name = name;
    s.value = value;
    push.instruments.push_back(std::move(s));
  };
  add(obs::InstrumentKind::kCounter, "nan_total", kNan);
  add(obs::InstrumentKind::kCounter, "neg_total", -1.0);
  add(obs::InstrumentKind::kCounter, "inf_total", kInf);
  add(obs::InstrumentKind::kCounter, "huge_total", 1e300);
  add(obs::InstrumentKind::kCounter, "good_total", 3.0);
  add(obs::InstrumentKind::kGauge, "nan_level", kNan);
  add(obs::InstrumentKind::kGauge, "high_level", 1e300);
  add(obs::InstrumentKind::kGauge, "low_level", -1e300);
  {
    InstrumentSnapshot s;
    s.kind = obs::InstrumentKind::kHistogram;
    s.name = "poisoned_ns";
    s.hist.counts.assign(Histogram::kBucketCount, 0);
    s.hist.counts[10] = 4;
    s.hist.count = 4;
    s.hist.max = kInf;
    push.instruments.push_back(std::move(s));
  }

  Registry r;
  const Registry::MergeResult res = r.merge_from(push);
  EXPECT_EQ(res.merged, 4u);   // good_total, both clamped gauges, histogram
  EXPECT_EQ(res.dropped, 5u);  // four hostile counters and the NaN gauge
  const obs::RegistrySnapshot snap = r.snapshot();
  EXPECT_EQ(snap.find("nan_total"), nullptr);
  EXPECT_EQ(snap.find("neg_total"), nullptr);
  EXPECT_EQ(snap.find("inf_total"), nullptr);
  EXPECT_EQ(snap.find("huge_total"), nullptr);
  EXPECT_EQ(snap.find("nan_level"), nullptr);
  ASSERT_NE(snap.find("good_total"), nullptr);
  EXPECT_EQ(snap.find("good_total")->value, 3.0);
  EXPECT_EQ(
      snap.find("high_level")->value,
      static_cast<double>(std::numeric_limits<std::int64_t>::max()));
  EXPECT_EQ(
      snap.find("low_level")->value,
      static_cast<double>(std::numeric_limits<std::int64_t>::min()));
  const InstrumentSnapshot* hist = snap.find("poisoned_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, 4u) << "bucket counts survive";
  EXPECT_TRUE(std::isfinite(hist->hist.max)) << "+inf max must not stick";
}

TEST(RegistryMerge, NonPrometheusIdentifiersAreDropped) {
  // render_prometheus writes names and label keys verbatim; a pushed name
  // with a newline or space would inject fake exposition lines.
  obs::RegistrySnapshot push;
  InstrumentSnapshot bad_name;
  bad_name.kind = obs::InstrumentKind::kCounter;
  bad_name.name = "evil 1\ninjected_series 99";
  bad_name.value = 1.0;
  push.instruments.push_back(std::move(bad_name));
  InstrumentSnapshot bad_key;
  bad_key.kind = obs::InstrumentKind::kCounter;
  bad_key.name = "ok_total";
  bad_key.labels = {{"k=\"v\"} fake", "x"}};
  bad_key.value = 1.0;
  push.instruments.push_back(std::move(bad_key));

  Registry r;
  const Registry::MergeResult res = r.merge_from(push);
  EXPECT_EQ(res.merged, 0u);
  EXPECT_EQ(res.dropped, 2u);
  EXPECT_EQ(r.size(), 0u);
}

TEST(RegistryMerge, NewSeriesBudgetCapsMintingButNotAccumulation) {
  Registry sender;
  sender.counter("a_total").add(1);
  sender.counter("b_total").add(1);
  sender.counter("c_total").add(1);
  const obs::RegistrySnapshot push = sender.snapshot();

  Registry r;
  const Registry::MergeResult first = r.merge_from(push, {}, 2);
  EXPECT_EQ(first.created, 2u);
  EXPECT_EQ(first.merged, 2u);
  EXPECT_EQ(first.dropped, 1u) << "the third series exceeds the budget";
  EXPECT_EQ(r.size(), 2u);

  // A zero budget still folds deltas into the series that already exist.
  const Registry::MergeResult second = r.merge_from(push, {}, 0);
  EXPECT_EQ(second.created, 0u);
  EXPECT_EQ(second.merged, 2u);
  EXPECT_EQ(second.dropped, 1u);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.snapshot().find("a_total")->value, 2.0);
  EXPECT_EQ(r.snapshot().find("c_total"), nullptr);
}

TEST(RegistryConcurrency, MergeWhileRecordingKeepsExactTotals) {
  // The tier1-tsan companion to the snapshot hammer: remote pushes merge
  // into the registry while local threads record into the same instruments
  // (same name, no client label — distinct series; and the same series via
  // an empty label merge).  After the join every add is accounted for.
  const int threads = static_cast<int>(util::env_long("REPRO_THREADS", 4));
  constexpr int kPerThread = 10000;
  constexpr int kMerges = 200;
  Registry reg;
  obs::Counter& local = reg.counter("mixed_total");
  obs::Histogram& lat = reg.histogram("mixed_ns");
  Registry sender;
  sender.counter("mixed_total").add(1);
  sender.histogram("mixed_ns").record(50.0);
  const obs::RegistrySnapshot push = sender.snapshot();

  std::vector<std::thread> writers;
  writers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&local, &lat] {
      for (int i = 0; i < kPerThread; ++i) {
        local.add();
        lat.record(1000.0);
      }
    });
  }
  for (int m = 0; m < kMerges; ++m) {
    reg.merge_from(push);  // merges into the very series being recorded
    (void)reg.snapshot();
  }
  for (auto& w : writers) w.join();
  const obs::RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("mixed_total")->value,
            static_cast<double>(threads) * kPerThread + kMerges);
  EXPECT_EQ(snap.find("mixed_ns")->hist.count,
            static_cast<std::uint64_t>(threads) * kPerThread + kMerges);
}

TEST(RegistryContract, PrometheusEscapesLabelValuesAndHelp) {
  // Label values may carry anything a session name (or a pushed client
  // label) does: backslashes, quotes, newlines.  The exposition format
  // requires \\, \" and \n — an unescaped newline truncates the series and
  // the scraper drops the rest of the page.
  Registry reg;
  reg.counter("protuner_esc_total", "", {{"session", "a\\b\"c\nd"}}).add(1);
  reg.gauge("protuner_esc_gauge", "line one\nline \\two").set(5);
  std::ostringstream out;
  obs::render_prometheus(out, reg.snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("protuner_esc_total{session=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP protuner_esc_gauge line one\\nline \\\\two"),
            std::string::npos)
      << text;
  // No raw newline may survive inside any line: every line is complete.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.find('\r'), std::string::npos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
  }
}

TEST(RegistryContract, PrometheusEmitsHelpAndTypeOncePerFamily) {
  // Client-labelled series multiply the label sets per family; the HELP and
  // TYPE headers must still appear exactly once each, before the family's
  // first sample.
  Registry reg;
  reg.counter("protuner_family_total", "one family").add(1);
  reg.counter("protuner_family_total", "one family", {{"client", "1"}})
      .add(2);
  reg.counter("protuner_family_total", "one family", {{"client", "2"}})
      .add(3);
  reg.histogram("protuner_family_ns", "latencies").record(10.0);
  reg.histogram("protuner_family_ns", "latencies", {{"client", "1"}})
      .record(20.0);
  std::ostringstream out;
  obs::render_prometheus(out, reg.snapshot());
  const std::string text = out.str();
  const auto count_of = [&text](const std::string& needle) {
    int n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# TYPE protuner_family_total counter"), 1);
  EXPECT_EQ(count_of("# HELP protuner_family_total"), 1);
  EXPECT_EQ(count_of("# TYPE protuner_family_ns summary"), 1);
  EXPECT_EQ(count_of("# HELP protuner_family_ns"), 1);
  EXPECT_EQ(count_of("protuner_family_total{client=\"1\"} 2"), 1);
  EXPECT_EQ(count_of("protuner_family_total{client=\"2\"} 3"), 1);
}

TEST(RegistryConcurrency, SnapshotWhileRecordingIsRaceFreeAndExact) {
  // REPRO_THREADS writers hammer one counter and one histogram while the
  // main thread snapshots continuously; after the join, totals are exact.
  const int threads =
      static_cast<int>(util::env_long("REPRO_THREADS", 4));
  constexpr int kPerThread = 20000;
  Registry reg;
  obs::Counter& hits = reg.counter("hits");
  obs::Histogram& lat = reg.histogram("lat");
  std::atomic<int> finished{0};
  std::vector<std::thread> writers;
  writers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&hits, &lat, &finished, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.add();
        lat.record(static_cast<double>((t + 1) * (i % 1000) + 1));
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::uint64_t last_count = 0;
  while (finished.load(std::memory_order_relaxed) < threads) {
    const obs::RegistrySnapshot snap = reg.snapshot();
    const InstrumentSnapshot* l = snap.find("lat");
    ASSERT_NE(l, nullptr);
    // Buckets only grow, so consecutive snapshots are monotone.
    EXPECT_GE(l->hist.count, last_count) << "bucket totals ran backwards";
    last_count = l->hist.count;
    std::this_thread::yield();
  }
  for (auto& w : writers) w.join();
  const obs::RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("hits")->value,
            static_cast<double>(threads) * kPerThread);
  EXPECT_EQ(snap.find("lat")->hist.count,
            static_cast<std::uint64_t>(threads) * kPerThread);
}

TEST(ServerProtocolErrors, AreCountedWithoutDisturbingTheSession) {
  // Regression for the satellite fix: protocol violations used to be thrown
  // and forgotten; now each one increments the session's counter while the
  // round state stays intact.
  Registry reg;
  harmony::ServerOptions options;
  options.metrics = &reg;
  options.session = "errs";
  harmony::Server server(
      std::make_unique<core::FixedStrategy>(core::Point{1.0}), 2, options);
  const auto errors = [&reg] {
    return static_cast<std::uint64_t>(
        reg.snapshot()
            .find("protuner_harmony_protocol_errors_total", "errs")
            ->value);
  };
  EXPECT_EQ(errors(), 0u);

  (void)server.fetch(0);
  EXPECT_THROW((void)server.fetch(0), harmony::ProtocolError);  // double fetch
  EXPECT_EQ(errors(), 1u);
  EXPECT_THROW(server.report(1, 1.0), harmony::ProtocolError);  // no fetch
  EXPECT_EQ(errors(), 2u);
  EXPECT_THROW((void)server.fetch(7), harmony::ProtocolError);  // out of range
  EXPECT_THROW(server.report(7, 1.0), harmony::ProtocolError);
  EXPECT_EQ(errors(), 4u);

  // The session is undisturbed: the open round completes normally.
  (void)server.fetch(1);
  server.report(0, 2.0);
  server.report(1, 3.0);
  EXPECT_EQ(server.rounds_completed(), 1u);
  EXPECT_DOUBLE_EQ(server.total_time(), 3.0);
  const obs::RegistrySnapshot snap = server.metrics_snapshot();
  EXPECT_EQ(snap.find("protuner_rounds_total", "errs")->value, 1.0);
}

TEST(RecordingAllocation, HotPathRecordingIsAllocationFree) {
  // Instruments are resolved up front (that allocates); recording on the
  // resolved references must not touch the heap at all.
  Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h");
  c.add();
  g.set(1);
  h.record(1.0);  // warm
  const std::size_t before = allocation_count();
  for (int i = 0; i < 10000; ++i) {
    c.add(2);
    g.add(1);
    g.sub(1);
    h.record(static_cast<double>(i) * 1e3);
  }
  EXPECT_EQ(allocation_count(), before)
      << "metric recording allocated on the heap";
}

}  // namespace
}  // namespace protuner
