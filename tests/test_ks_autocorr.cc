// Tests for the Kolmogorov-Smirnov fit tests and autocorrelation — and,
// through them, a goodness-of-fit validation of every sampler in the
// distribution library.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stats/autocorr.h"
#include "stats/common_distributions.h"
#include "stats/ks.h"
#include "stats/pareto.h"
#include "util/rng.h"

namespace protuner::stats {
namespace {

std::vector<double> draw(const Distribution& d, std::size_t n,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.sample(rng);
  return xs;
}

TEST(KolmogorovQ, Endpoints) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(10.0), 0.0, 1e-12);
  // Known value: Q(1.0) ~ 0.27.
  EXPECT_NEAR(kolmogorov_q(1.0), 0.27, 0.01);
}

TEST(KsTest, AcceptsOwnSamples) {
  const Exponential e(1.5);
  const auto xs = draw(e, 5000, 11);
  const KsResult r = ks_test(xs, e);
  EXPECT_LT(r.statistic, 0.03);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, RejectsWrongDistribution) {
  const Exponential e(1.5);
  const Normal n(2.0, 1.0);
  const auto xs = draw(e, 5000, 12);
  const KsResult r = ks_test(xs, n);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, RejectsWrongParameter) {
  const Pareto right(1.7, 1.0);
  const Pareto wrong(1.2, 1.0);
  const auto xs = draw(right, 8000, 13);
  EXPECT_GT(ks_test(xs, right).p_value, 0.01);
  EXPECT_LT(ks_test(xs, wrong).p_value, 1e-4);
}

struct FitCase {
  const char* label;
  std::shared_ptr<Distribution> dist;
};

class SamplerFit : public ::testing::TestWithParam<FitCase> {};

TEST_P(SamplerFit, KsAcceptsSampler) {
  const auto& d = *GetParam().dist;
  const auto xs = draw(d, 8000, 29);
  const KsResult r = ks_test(xs, d);
  EXPECT_GT(r.p_value, 0.005) << GetParam().label
                              << " statistic=" << r.statistic;
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplers, SamplerFit,
    ::testing::Values(
        FitCase{"pareto", std::make_shared<Pareto>(1.7, 2.0)},
        FitCase{"pareto_small_alpha", std::make_shared<Pareto>(0.8, 1.0)},
        FitCase{"exponential", std::make_shared<Exponential>(0.7)},
        FitCase{"normal", std::make_shared<Normal>(3.0, 2.0)},
        FitCase{"lognormal", std::make_shared<LogNormal>(0.2, 0.9)},
        FitCase{"weibull", std::make_shared<Weibull>(2.2, 1.5)},
        FitCase{"uniform", std::make_shared<Uniform>(-1.0, 4.0)}),
    [](const ::testing::TestParamInfo<FitCase>& info) {
      return info.param.label;
    });

TEST(KsTwoSample, SameSourceSmallDistance) {
  const Normal n(0.0, 1.0);
  const auto a = draw(n, 4000, 31);
  const auto b = draw(n, 4000, 32);
  EXPECT_LT(ks_two_sample(a, b), 0.04);
}

TEST(KsTwoSample, DifferentSourcesLargeDistance) {
  const Normal n(0.0, 1.0);
  const Normal shifted(1.0, 1.0);
  const auto a = draw(n, 4000, 33);
  const auto b = draw(shifted, 4000, 34);
  EXPECT_GT(ks_two_sample(a, b), 0.3);
}

TEST(Autocorr, LagZeroIsOne) {
  const std::vector<double> xs{1.0, 3.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(Autocorr, IidNoiseNearZero) {
  util::Rng rng(5);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.03);
  EXPECT_NEAR(autocorrelation(xs, 5), 0.0, 0.03);
}

TEST(Autocorr, PersistentSeriesPositiveLag1) {
  // AR(1) with coefficient 0.8.
  util::Rng rng(6);
  std::vector<double> xs(20000);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = 0.8 * prev + rng.normal();
    x = prev;
  }
  EXPECT_NEAR(autocorrelation(xs, 1), 0.8, 0.05);
}

TEST(Autocorr, ConstantSeriesConvention) {
  const std::vector<double> xs{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
}

TEST(Autocorr, AcfShape) {
  util::Rng rng(7);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.uniform();
  const auto a = acf(xs, 10);
  ASSERT_EQ(a.size(), 11u);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
}

}  // namespace
}  // namespace protuner::stats
