// Tests for core::RoundEngine: the extracted round lifecycle state machine
// every driver (run_session, harmony::Server, message server, benches)
// advances through.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/fixed.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/round_engine.h"
#include "core/session.h"
#include "varmodel/noise_model.h"

namespace protuner {
namespace {

using core::EngineError;
using core::Point;
using core::RoundEngine;
using core::RoundEngineOptions;
using core::RoundPhase;

/// Records every span passed to observe() so tests can assert on the
/// proposal-order remapping the engine performs.
class SpyStrategy final : public core::TuningStrategy {
 public:
  explicit SpyStrategy(std::vector<Point> proposal)
      : proposal_(std::move(proposal)), best_(proposal_.front()) {}

  void start(std::size_t) override {}
  core::StepProposal propose() override { return {.configs = proposal_}; }
  void observe(std::span<const double> times) override {
    observed.emplace_back(times.begin(), times.end());
  }
  const Point& best_point() const override { return best_; }
  double best_estimate() const override { return 0.0; }
  bool converged() const override { return false; }
  std::string name() const override { return "Spy"; }

  std::vector<std::vector<double>> observed;

 private:
  std::vector<Point> proposal_;
  Point best_;
};

RoundEngineOptions padded(std::size_t width) {
  RoundEngineOptions o;
  o.width = width;
  o.pad_assignment = true;
  return o;
}

cluster::SimulatedCluster clean_cluster(std::size_t ranks,
                                        double value = 2.0) {
  auto land = std::make_shared<core::FunctionLandscape>(
      "flat", [value](const Point&) { return value; });
  return cluster::SimulatedCluster(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = ranks});
}

// ------------------------------------------------------- state machine

TEST(RoundEngine, PhasesAdvanceAssigningCollectingAssigning) {
  core::FixedStrategy fixed(Point{1.0});
  RoundEngine engine(fixed, padded(2));
  EXPECT_EQ(engine.phase(), RoundPhase::kAssigning);

  const auto assignment = engine.open_round();
  EXPECT_EQ(engine.phase(), RoundPhase::kCollecting);
  ASSERT_EQ(assignment.size(), 2u);
  EXPECT_EQ(engine.pending(), 2u);
  EXPECT_FALSE(engine.complete());

  engine.submit(0, 1.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.submit(1, 3.0);
  ASSERT_TRUE(engine.complete());

  EXPECT_DOUBLE_EQ(engine.close_round(), 3.0);  // T_k = max (Eq. 1)
  EXPECT_EQ(engine.phase(), RoundPhase::kAssigning);
  EXPECT_EQ(engine.rounds_completed(), 1u);
  EXPECT_DOUBLE_EQ(engine.total_time(), 3.0);   // Eq. 2
}

TEST(RoundEngine, MisuseIsALoudEngineError) {
  core::FixedStrategy fixed(Point{1.0});
  RoundEngine engine(fixed, padded(2));

  // Collecting-phase calls before any round is open.
  EXPECT_THROW(engine.submit(0, 1.0), EngineError);
  EXPECT_THROW((void)engine.assignment(), EngineError);
  EXPECT_THROW((void)engine.assignment_for(0), EngineError);
  EXPECT_THROW((void)engine.close_round(), EngineError);
  EXPECT_THROW((void)engine.impute_missing(), EngineError);

  engine.open_round();
  EXPECT_THROW((void)engine.open_round(), EngineError);  // already open
  EXPECT_THROW(engine.submit(2, 1.0), EngineError);      // out of range
  engine.submit(0, 1.0);
  EXPECT_THROW(engine.submit(0, 2.0), EngineError);      // double submit
  EXPECT_THROW((void)engine.close_round(), EngineError); // incomplete
  EXPECT_THROW(engine.deactivate(9), EngineError);
  EXPECT_THROW(engine.reactivate(9), EngineError);
}

TEST(RoundEngine, RejectsZeroWidthAndBadPenalty) {
  core::FixedStrategy fixed(Point{1.0});
  EXPECT_THROW(RoundEngine(fixed, padded(0)), EngineError);
  RoundEngineOptions o = padded(2);
  o.impute_penalty = 0.5;
  EXPECT_THROW(RoundEngine(fixed, o), EngineError);
}

// -------------------------------------------------- parity with sessions

TEST(RoundEngine, ManualStepLoopMatchesRunSession) {
  const core::ParameterSpace space({core::Parameter::integer("i", 0, 15),
                                    core::Parameter::integer("j", 0, 15)});
  auto land = std::make_shared<core::QuadraticLandscape>(Point{4.0, 11.0},
                                                         1.0, 0.3);

  auto machine_a = cluster::SimulatedCluster(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 6, .seed = 7});
  core::ProStrategy pro_a(space, {});
  const core::SessionResult via_session =
      core::run_session(pro_a, machine_a, {.steps = 80});

  auto machine_b = cluster::SimulatedCluster(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 6, .seed = 7});
  core::ProStrategy pro_b(space, {});
  RoundEngineOptions o;
  o.width = 6;
  RoundEngine engine(pro_b, o);
  for (int k = 0; k < 80; ++k) engine.step(machine_b);
  const core::SessionResult via_engine = engine.result();

  EXPECT_EQ(via_engine.best, via_session.best);
  EXPECT_DOUBLE_EQ(via_engine.total_time, via_session.total_time);
  EXPECT_EQ(via_engine.step_costs, via_session.step_costs);
  EXPECT_EQ(via_engine.cumulative, via_session.cumulative);
  EXPECT_EQ(via_engine.convergence_step, via_session.convergence_step);
}

// ----------------------------------------------------------- padded mode

TEST(RoundEngine, PaddedModeRunsBestPointOnExtraRanks) {
  // One proposed config, width 3: slots 1 and 2 run the best point, their
  // times count toward T_k but only slot 0's time reaches the strategy.
  SpyStrategy spy({Point{42.0}});
  RoundEngine engine(spy, padded(3));

  const auto assignment = engine.open_round();
  ASSERT_EQ(assignment.size(), 3u);
  EXPECT_EQ(assignment[0], (Point{42.0}));
  EXPECT_EQ(assignment[1], spy.best_point());
  EXPECT_EQ(assignment[2], spy.best_point());

  engine.submit_all(std::vector<double>{1.0, 9.0, 3.0});
  EXPECT_DOUBLE_EQ(engine.close_round(), 9.0);  // max over *all* slots
  ASSERT_EQ(spy.observed.size(), 1u);
  EXPECT_EQ(spy.observed[0], (std::vector<double>{1.0}));
}

TEST(RoundEngine, UnpaddedModePublishesProposalVerbatim) {
  SpyStrategy spy({Point{1.0}, Point{2.0}});
  RoundEngineOptions o;
  o.width = 8;  // strategy only proposes 2; unpadded assignment has 2 slots
  RoundEngine engine(spy, o);
  const auto assignment = engine.open_round();
  ASSERT_EQ(assignment.size(), 2u);
  engine.submit_all(std::vector<double>{5.0, 4.0});
  EXPECT_DOUBLE_EQ(engine.close_round(), 5.0);
  EXPECT_EQ(spy.observed[0], (std::vector<double>{5.0, 4.0}));
}

// ----------------------------------------------------------- imputation

TEST(RoundEngine, ImputeMissingUsesMaxObservedTimesPenalty) {
  core::FixedStrategy fixed(Point{1.0});
  RoundEngine engine(fixed, padded(4));
  engine.open_round();
  engine.submit(0, 1.0);
  engine.submit(1, 2.0);
  engine.submit(2, 3.0);

  const std::vector<std::size_t> imputed = engine.impute_missing();
  EXPECT_EQ(imputed, (std::vector<std::size_t>{3}));
  ASSERT_TRUE(engine.complete());
  EXPECT_DOUBLE_EQ(engine.close_round(), 4.5);  // 3.0 × 1.5 penalty
}

TEST(RoundEngine, ImputeFallsBackToPreviousRoundCost) {
  core::FixedStrategy fixed(Point{1.0});
  RoundEngine engine(fixed, padded(2));
  engine.open_round();
  engine.submit_all(std::vector<double>{1.0, 2.0});
  engine.close_round();  // T_1 = 2.0

  engine.open_round();   // nobody reports this round
  const std::vector<std::size_t> imputed = engine.impute_missing();
  EXPECT_EQ(imputed.size(), 2u);
  EXPECT_DOUBLE_EQ(engine.close_round(), 3.0);  // 2.0 × 1.5
}

TEST(RoundEngine, ImputeWithNothingObservedEverIsAnError) {
  core::FixedStrategy fixed(Point{1.0});
  RoundEngine engine(fixed, padded(2));
  engine.open_round();
  EXPECT_THROW((void)engine.impute_missing(), EngineError);
}

TEST(RoundEngine, ImputeOnCompleteRoundIsANoOp) {
  core::FixedStrategy fixed(Point{1.0});
  RoundEngine engine(fixed, padded(1));
  engine.open_round();
  engine.submit(0, 1.0);
  EXPECT_TRUE(engine.impute_missing().empty());
}

// ------------------------------------------------------- rank membership

TEST(RoundEngine, DeactivateShrinksTheNextRound) {
  core::FixedStrategy fixed(Point{1.0});
  RoundEngine engine(fixed, padded(4));
  engine.open_round();
  engine.submit_all(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  engine.close_round();

  engine.deactivate(2);
  EXPECT_EQ(engine.active_count(), 3u);
  engine.open_round();
  EXPECT_FALSE(engine.expected(2));  // placeholder slot, not participating
  EXPECT_EQ(engine.pending(), 3u);
  engine.submit(0, 1.0);
  engine.submit(1, 2.0);
  EXPECT_THROW(engine.submit(2, 99.0), EngineError);
  engine.submit(3, 3.0);
  EXPECT_DOUBLE_EQ(engine.close_round(), 3.0);  // slot 2 excluded from T_k

  engine.reactivate(2);
  engine.open_round();
  EXPECT_TRUE(engine.expected(2));
  EXPECT_EQ(engine.pending(), 4u);
  engine.submit_all(std::vector<double>{1.0, 1.0, 8.0, 1.0});
  EXPECT_DOUBLE_EQ(engine.close_round(), 8.0);
}

TEST(RoundEngine, DroppedSlotRemapsProposalAndImputesUnassignedConfig) {
  // Width 4, 4 proposed configs, slot 0 dropped: configs 0..2 land on
  // slots 1..3 and config 3 has no rank to run it — the strategy must
  // still receive 4 times, the last one imputed (max observed × penalty).
  SpyStrategy spy({Point{0.0}, Point{1.0}, Point{2.0}, Point{3.0}});
  RoundEngine engine(spy, padded(4));
  engine.deactivate(0);

  const auto assignment = engine.open_round();
  EXPECT_EQ(assignment[1], (Point{0.0}));
  EXPECT_EQ(assignment[2], (Point{1.0}));
  EXPECT_EQ(assignment[3], (Point{2.0}));

  engine.submit(1, 5.0);
  engine.submit(2, 6.0);
  engine.submit(3, 4.0);
  engine.close_round();

  ASSERT_EQ(spy.observed.size(), 1u);
  EXPECT_EQ(spy.observed[0], (std::vector<double>{5.0, 6.0, 4.0, 9.0}));
}

// ------------------------------------------------- observers and results

TEST(RoundEngine, ObserverSeesEveryRoundAndFirstConvergence) {
  class Watcher final : public core::SessionObserver {
   public:
    void on_step(std::size_t step, std::span<const Point> configs,
                 std::span<const double> times, double cost) override {
      EXPECT_EQ(step, steps);  // 0-based round index
      EXPECT_EQ(configs.size(), 3u);
      EXPECT_EQ(times.size(), 3u);
      last_cost = cost;
      ++steps;
    }
    void on_converged(std::size_t step, const Point&) override {
      ++converged_fires;
      converged_at = step;
    }
    std::size_t steps = 0;
    std::size_t converged_fires = 0;
    std::size_t converged_at = 0;
    double last_cost = 0.0;
  } watcher;

  core::FixedStrategy fixed(Point{1.0});  // converged() is always true
  RoundEngineOptions o = padded(3);
  o.observer = &watcher;
  RoundEngine engine(fixed, o);
  for (int k = 0; k < 3; ++k) {
    engine.open_round();
    engine.submit_all(std::vector<double>{1.0, 2.0, 3.0});
    engine.close_round();
  }
  EXPECT_EQ(watcher.steps, 3u);
  EXPECT_DOUBLE_EQ(watcher.last_cost, 3.0);
  EXPECT_EQ(watcher.converged_fires, 1u);  // first convergence only
  EXPECT_EQ(watcher.converged_at, 1u);     // 1-based round of convergence
  EXPECT_EQ(engine.convergence_round(), std::optional<std::size_t>(1));
}

TEST(RoundEngine, ResultSnapshotsAccounting) {
  core::FixedStrategy fixed(Point{7.0});
  auto machine = clean_cluster(2, 2.5);
  RoundEngine engine(fixed, padded(2));
  for (int k = 0; k < 4; ++k) engine.step(machine);

  const core::SessionResult r = engine.result();
  EXPECT_EQ(r.steps, 4u);
  EXPECT_DOUBLE_EQ(r.total_time, 10.0);
  EXPECT_EQ(r.step_costs, (std::vector<double>{2.5, 2.5, 2.5, 2.5}));
  EXPECT_EQ(r.cumulative, (std::vector<double>{2.5, 5.0, 7.5, 10.0}));
  EXPECT_EQ(r.best, (Point{7.0}));
  ASSERT_TRUE(r.converged());
  EXPECT_EQ(*r.convergence_step, 1u);
}

TEST(RoundEngine, RecordSeriesOffKeepsTotalsOnly) {
  core::FixedStrategy fixed(Point{1.0});
  RoundEngineOptions o = padded(2);
  o.record_series = false;
  RoundEngine engine(fixed, o);
  auto machine = clean_cluster(2, 1.5);
  for (int k = 0; k < 3; ++k) engine.step(machine);
  EXPECT_TRUE(engine.step_costs().empty());
  EXPECT_TRUE(engine.cumulative().empty());
  EXPECT_DOUBLE_EQ(engine.total_time(), 4.5);
}

}  // namespace
}  // namespace protuner
