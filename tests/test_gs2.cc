// Tests for the GS2 surrogate: surface structure, database interpolation,
// and trace generation.
#include <gtest/gtest.h>

#include <set>

#include "core/landscape.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "gs2/trace.h"
#include "varmodel/pareto_noise.h"

namespace protuner::gs2 {
namespace {

TEST(Gs2Space, ShapeMatchesPaperStudy) {
  const auto space = gs2_space();
  ASSERT_EQ(space.size(), 3u);
  EXPECT_EQ(space.param(kNtheta).name(), "ntheta");
  EXPECT_EQ(space.param(kNegrid).name(), "negrid");
  EXPECT_EQ(space.param(kNodes).name(), "nodes");
  EXPECT_TRUE(space.admissible(core::Point{16.0, 8.0, 4.0}));
  EXPECT_TRUE(space.admissible(core::Point{64.0, 32.0, 64.0}));
  EXPECT_FALSE(space.admissible(core::Point{17.0, 8.0, 4.0}));   // odd ntheta
  EXPECT_FALSE(space.admissible(core::Point{16.0, 8.0, 6.0}));   // nodes % 4
}

TEST(Gs2Surface, StrictlyPositiveEverywhere) {
  const Gs2Surface surface;
  const auto space = gs2_space();
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GT(surface.clean_time(space.random_point(rng)), 0.0);
  }
}

TEST(Gs2Surface, MoreNodesHelpsUntilCommDominates) {
  const Gs2Surface surface;
  const double few = surface.clean_time(core::Point{48.0, 24.0, 4.0});
  const double mid = surface.clean_time(core::Point{48.0, 24.0, 24.0});
  const double many = surface.clean_time(core::Point{48.0, 24.0, 128.0});
  EXPECT_LT(mid, few);    // scaling out pays at first
  EXPECT_GT(many, mid);   // then communication wins
}

TEST(Gs2Surface, WorkGrowsWithResolution) {
  const Gs2Surface surface;
  EXPECT_LT(surface.clean_time(core::Point{16.0, 8.0, 16.0}),
            surface.clean_time(core::Point{64.0, 32.0, 16.0}));
}

TEST(Gs2Surface, HasMultipleLocalMinimaAlongNodes) {
  // Fig. 8 structure: the divisibility sawtooth creates non-monotone
  // behaviour, i.e. at least one interior local minimum in the nodes axis.
  const Gs2Surface surface;
  const auto space = gs2_space();
  const auto& nodes = space.param(kNodes).values();
  int sign_changes = 0;
  double prev_delta = 0.0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const double a =
        surface.clean_time(core::Point{30.0, 17.0, nodes[i - 1]});
    const double b = surface.clean_time(core::Point{30.0, 17.0, nodes[i]});
    const double delta = b - a;
    if (i > 1 && delta * prev_delta < 0.0) ++sign_changes;
    prev_delta = delta;
  }
  EXPECT_GE(sign_changes, 1);
}

TEST(Database, ExactEntriesRoundTrip) {
  const auto space = gs2_space();
  const Gs2Surface surface;
  const Database db = Database::measure(space, surface, {});
  EXPECT_GT(db.entries(), 100u);
  // Every stored entry reproduces its stored value exactly.
  const core::Point probe{16.0, 8.0, 4.0};
  const auto hit = db.exact(probe);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(db.clean_time(probe), *hit);
}

TEST(Database, InterpolatesOffGridPoints) {
  const auto space = gs2_space();
  const Gs2Surface surface;
  const Database db = Database::measure(space, surface, {});
  // negrid is decimated with stride 2, so some odd values are off-grid.
  core::Point off{16.0, 9.0, 4.0};
  if (db.exact(off).has_value()) off[kNegrid] = 11.0;
  ASSERT_FALSE(db.exact(off).has_value());
  const double v = db.clean_time(off);
  EXPECT_GT(v, 0.0);
  // Interpolation must stay within the surface's plausible range around it.
  const double lo = surface.clean_time(core::Point{16.0, 8.0, 4.0});
  const double hi = surface.clean_time(core::Point{16.0, 12.0, 4.0});
  EXPECT_GT(v, 0.5 * std::min(lo, hi));
  EXPECT_LT(v, 2.0 * std::max(lo, hi));
}

TEST(Database, InterpolationIsWeightedTowardNearestNeighbor) {
  core::ParameterSpace space({core::Parameter::integer("x", 0, 10)});
  Database db(space, {.stride = 1, .interpolation_neighbors = 2});
  db.insert(core::Point{0.0}, 1.0);
  db.insert(core::Point{10.0}, 11.0);
  const double near_low = db.clean_time(core::Point{1.0});
  const double near_high = db.clean_time(core::Point{9.0});
  EXPECT_LT(near_low, 6.0);
  EXPECT_GT(near_high, 6.0);
}

TEST(Database, InsertInvalidatesInterpolationCache) {
  core::ParameterSpace space({core::Parameter::integer("x", 0, 10)});
  Database db(space, {.stride = 1, .interpolation_neighbors = 1});
  db.insert(core::Point{0.0}, 1.0);
  const double before = db.clean_time(core::Point{5.0});
  EXPECT_DOUBLE_EQ(before, 1.0);
  db.insert(core::Point{6.0}, 42.0);
  EXPECT_DOUBLE_EQ(db.clean_time(core::Point{5.0}), 42.0);
}

TEST(Database, MeasurementNoiseBakedIn) {
  const auto space = gs2_space();
  const Gs2Surface surface;
  const varmodel::ParetoNoise noise(0.2, 1.7);
  const Database noisy = Database::measure(space, surface, {}, &noise, 9);
  const Database clean = Database::measure(space, surface, {});
  const core::Point probe{16.0, 8.0, 4.0};
  EXPECT_GT(*noisy.exact(probe), *clean.exact(probe));
}

TEST(Trace, ShapeAndDeterminism) {
  const Gs2Surface surface;
  TraceConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 100;
  const auto t1 = generate_trace(surface, {32.0, 16.0, 16.0}, cfg);
  const auto t2 = generate_trace(surface, {32.0, 16.0, 16.0}, cfg);
  ASSERT_EQ(t1.size(), 4u);
  ASSERT_EQ(t1[0].size(), 100u);
  EXPECT_EQ(t1, t2);
}

TEST(Trace, FlattenConcatenatesAllRanks) {
  const Gs2Surface surface;
  TraceConfig cfg;
  cfg.ranks = 3;
  cfg.iterations = 10;
  const auto trace = generate_trace(surface, {32.0, 16.0, 16.0}, cfg);
  EXPECT_EQ(flatten(trace).size(), 30u);
}

TEST(Trace, CrossRankCorrelationIsHigh) {
  // Fig. 3's "high correlation and similarity between the curves".
  const Gs2Surface surface;
  TraceConfig cfg;
  cfg.ranks = 2;
  cfg.iterations = 4000;
  cfg.shocks.big_prob = 0.05;
  const auto trace = generate_trace(surface, {32.0, 16.0, 16.0}, cfg);
  EXPECT_GT(rank_correlation(trace[0], trace[1]), 0.5);
}

TEST(Trace, UncorrelatedWhenSharedShocksOff) {
  const Gs2Surface surface;
  TraceConfig cfg;
  cfg.ranks = 2;
  cfg.iterations = 4000;
  cfg.shocks.big_prob = 0.0;  // only idiosyncratic spikes remain
  const auto trace = generate_trace(surface, {32.0, 16.0, 16.0}, cfg);
  EXPECT_LT(std::abs(rank_correlation(trace[0], trace[1])), 0.2);
}

}  // namespace
}  // namespace protuner::gs2
