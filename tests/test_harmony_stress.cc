// Stress tests for the Harmony server under adversarial client timing:
// uneven per-rank delays, noisy measurements, many rounds, and different
// strategy types behind the same protocol.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "comm/spmd.h"
#include "core/annealing.h"
#include "core/genetic.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "harmony/server.h"
#include "util/rng.h"
#include "varmodel/pareto_noise.h"

namespace protuner {
namespace {

core::ParameterSpace int_box() {
  return core::ParameterSpace({core::Parameter::integer("a", 0, 20),
                               core::Parameter::integer("b", 0, 20)});
}

TEST(HarmonyStress, UnevenClientTimingKeepsRoundsConsistent) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{5.0, 5.0}, 1.0, 0.2);
  harmony::Server server(
      std::make_unique<core::ProStrategy>(space, core::ProOptions{}), 6);

  comm::spmd_run(6, [&](comm::Communicator& c) {
    harmony::Client client(server, c.rank());
    util::Rng rng(100 + c.rank());
    for (int step = 0; step < 120; ++step) {
      const core::Point cfg = client.fetch();
      // Stagger the ranks: some report immediately, some lag.
      if (rng.bernoulli(0.3)) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            rng.uniform_int(1, 200)));
      }
      client.report(land.clean_time(cfg));
    }
  });
  EXPECT_EQ(server.rounds_completed(), 120u);
  EXPECT_EQ(server.step_costs().size(), 120u);
  EXPECT_EQ(server.best_point(), (core::Point{5.0, 5.0}));
}

TEST(HarmonyStress, NoisyMeasurementsDoNotBreakProtocol) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{12.0, 8.0}, 1.0, 0.3);
  const varmodel::ParetoNoise noise(0.3, 1.7);
  core::ProOptions opts;
  opts.samples = 2;
  harmony::Server server(std::make_unique<core::ProStrategy>(space, opts),
                         4);

  comm::spmd_run(4, [&](comm::Communicator& c) {
    harmony::Client client(server, c.rank());
    util::Rng rng(500 + c.rank());
    for (int step = 0; step < 200; ++step) {
      const core::Point cfg = client.fetch();
      client.report(noise.observe(land.clean_time(cfg), rng));
    }
  });
  EXPECT_EQ(server.rounds_completed(), 200u);
  // With noise the exact optimum isn't guaranteed, but the result must be
  // admissible and the accounting positive and finite.
  EXPECT_TRUE(space.admissible(server.best_point()));
  EXPECT_GT(server.total_time(), 0.0);
}

TEST(HarmonyStress, RandomizedStrategiesBehindTheServer) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{3.0, 17.0}, 1.0, 0.2);
  for (int which = 0; which < 2; ++which) {
    core::TuningStrategyPtr strategy;
    if (which == 0) {
      core::AnnealingOptions o;
      o.seed = 9;
      strategy = std::make_unique<core::AnnealingStrategy>(space, o);
    } else {
      core::GeneticOptions o;
      o.seed = 9;
      strategy = std::make_unique<core::GeneticStrategy>(space, o);
    }
    harmony::Server server(std::move(strategy), 5);
    comm::spmd_run(5, [&](comm::Communicator& c) {
      harmony::Client client(server, c.rank());
      for (int step = 0; step < 80; ++step) {
        const core::Point cfg = client.fetch();
        EXPECT_TRUE(space.admissible(cfg));
        client.report(land.clean_time(cfg));
      }
    });
    EXPECT_EQ(server.rounds_completed(), 80u);
    EXPECT_LT(land.clean_time(server.best_point()),
              land.clean_time(space.center()));
  }
}

TEST(HarmonyStress, LongSessionManyRounds) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{10.0, 10.0}, 1.0, 0.5);
  harmony::Server server(
      std::make_unique<core::ProStrategy>(space, core::ProOptions{}), 3);
  comm::spmd_run(3, [&](comm::Communicator& c) {
    harmony::Client client(server, c.rank());
    for (int step = 0; step < 1000; ++step) {
      client.report(land.clean_time(client.fetch()));
    }
  });
  EXPECT_EQ(server.rounds_completed(), 1000u);
  EXPECT_TRUE(server.converged());
  // Step costs accumulate exactly.
  double sum = 0.0;
  for (double c : server.step_costs()) sum += c;
  EXPECT_NEAR(sum, server.total_time(), 1e-9);
}

}  // namespace
}  // namespace protuner
