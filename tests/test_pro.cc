// Tests for the PRO strategy (Algorithm 2): convergence on clean and noisy
// landscapes, step accounting, expansion-check behaviour, probe-based
// convergence certification, and the multi-sample modification.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/simulated_cluster.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/session.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "varmodel/pareto_noise.h"

namespace protuner::core {
namespace {

ParameterSpace int_box(long lo = 0, long hi = 20) {
  return ParameterSpace(
      {Parameter::integer("a", lo, hi), Parameter::integer("b", lo, hi)});
}

cluster::SimulatedCluster clean_cluster(LandscapePtr land, std::size_t ranks,
                                        std::uint64_t seed = 1) {
  return cluster::SimulatedCluster(
      std::move(land), std::make_shared<varmodel::NoNoise>(),
      {.ranks = ranks, .seed = seed});
}

TEST(Pro, FindsQuadraticMinimumNoiseFree) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{4.0, 17.0}, 1.0, 0.1);
  auto machine = clean_cluster(land, 8);
  ProStrategy pro(space, {});
  const SessionResult res = run_session(pro, machine, {.steps = 200});
  EXPECT_EQ(res.best, (Point{4.0, 17.0}));
  EXPECT_NEAR(res.best_clean, 1.0, 1e-9);
  EXPECT_TRUE(res.convergence_step.has_value());  // probe certified the minimum
}

TEST(Pro, ConvergedStrategyProposesBestForever) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{10.0, 10.0}, 1.0, 0.5);
  auto machine = clean_cluster(land, 8);
  ProStrategy pro(space, {});
  (void)run_session(pro, machine, {.steps = 300});
  ASSERT_TRUE(pro.converged());
  for (int i = 0; i < 5; ++i) {
    const StepProposal p = pro.propose();
    ASSERT_EQ(p.configs.size(), 8u);  // every rank runs the best config
    for (const auto& c : p.configs) EXPECT_EQ(c, (Point{10.0, 10.0}));
    pro.observe(std::vector<double>(8, 1.0));
  }
}

TEST(Pro, TotalTimeDecreasesVersusFixedCenterStart) {
  // On-line tuning must beat "never tune" when the centre is suboptimal.
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{2.0, 2.0}, 1.0, 0.2);
  auto m1 = clean_cluster(land, 8);
  auto m2 = clean_cluster(land, 8);
  ProStrategy pro(space, {});
  const SessionResult tuned = run_session(pro, m1, {.steps = 150});

  class CenterStrategy final : public TuningStrategy {
   public:
    explicit CenterStrategy(Point c) : c_(std::move(c)) {}
    void start(std::size_t) override {}
    StepProposal propose() override { return {.configs = {c_}}; }
    void observe(std::span<const double>) override {}
    const Point& best_point() const override { return c_; }
    double best_estimate() const override { return 0.0; }
    bool converged() const override { return true; }
    std::string name() const override { return "center"; }
    Point c_;
  } fixed(space.center());
  const SessionResult untuned = run_session(fixed, m2, {.steps = 150});
  EXPECT_LT(tuned.total_time, untuned.total_time);
}

TEST(Pro, HandlesMultimodalLandscape) {
  const auto space = int_box(0, 30);
  auto land = std::make_shared<MultimodalLandscape>(Point{22.0, 7.0}, 1.0,
                                                    0.4, 0.21);
  auto machine = clean_cluster(land, 10);
  ProStrategy pro(space, {});
  const SessionResult res = run_session(pro, machine, {.steps = 400});
  // Must land in *some* local minimum no worse than the centre start.
  EXPECT_LT(res.best_clean, land->clean_time(space.center()));
}

TEST(Pro, MinimalSimplexAlsoConverges) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{6.0, 6.0}, 1.0, 0.3);
  auto machine = clean_cluster(land, 8);
  ProOptions opts;
  opts.use_2n_simplex = false;
  ProStrategy pro(space, opts);
  const SessionResult res = run_session(pro, machine, {.steps = 300});
  EXPECT_LE(res.best_clean, land->clean_time(space.center()));
}

TEST(Pro, WorksWithFewerRanksThanSimplex) {
  // 2N = 4 candidate batch on 2 ranks: waves of 2; still converges.
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{4.0, 4.0}, 1.0, 0.3);
  auto machine = clean_cluster(land, 2);
  ProStrategy pro(space, {});
  const SessionResult res = run_session(pro, machine, {.steps = 300});
  EXPECT_EQ(res.best, (Point{4.0, 4.0}));
}

TEST(Pro, SingleRankDegeneratesGracefully) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{4.0, 4.0}, 1.0, 0.3);
  auto machine = clean_cluster(land, 1);
  ProStrategy pro(space, {});
  const SessionResult res = run_session(pro, machine, {.steps = 400});
  EXPECT_LE(res.best_clean, land->clean_time(space.center()));
}

TEST(Pro, MoveCountersAreConsistent) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{3.0, 15.0}, 1.0, 0.2);
  auto machine = clean_cluster(land, 8);
  ProStrategy pro(space, {});
  (void)run_session(pro, machine, {.steps = 250});
  EXPECT_GT(pro.iterations(), 0u);
  EXPECT_EQ(pro.iterations(), pro.expansions_accepted() +
                                  pro.reflections_accepted() +
                                  pro.shrinks_accepted());
}

TEST(Pro, ExpansionCheckDisabledStillConverges) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{17.0, 3.0}, 1.0, 0.2);
  auto machine = clean_cluster(land, 8);
  ProOptions opts;
  opts.expansion_check = false;
  ProStrategy pro(space, opts);
  const SessionResult res = run_session(pro, machine, {.steps = 300});
  EXPECT_EQ(res.best, (Point{17.0, 3.0}));
}

TEST(Pro, StopAtConvergenceDisabledNeverCertifies) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{5.0, 5.0}, 1.0, 0.4);
  auto machine = clean_cluster(land, 8);
  ProOptions opts;
  opts.stop_at_convergence = false;
  ProStrategy pro(space, opts);
  const SessionResult res = run_session(pro, machine, {.steps = 120});
  // Without the probe the strategy either keeps moving or freezes without a
  // certificate; in both cases it found the basin.
  EXPECT_LE(res.best_clean, land->clean_time(space.center()));
}

TEST(Pro, MultiSampleMinResistsHeavyNoise) {
  // Under heavy-tailed noise, K=3 with min estimator should find a truly
  // better configuration (clean value) at least as often as K=1, measured
  // across repetitions.  This is the behavioural core of Section 5.
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{4.0, 4.0}, 2.0, 0.5);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.3, 1.7);

  double clean_k1 = 0.0, clean_k3 = 0.0;
  constexpr int kReps = 25;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto seed = static_cast<std::uint64_t>(100 + rep);
    cluster::SimulatedCluster m1(land, noise, {.ranks = 8, .seed = seed});
    cluster::SimulatedCluster m3(land, noise, {.ranks = 8, .seed = seed});
    ProOptions o1;
    o1.samples = 1;
    ProOptions o3;
    o3.samples = 3;
    ProStrategy p1(space, o1);
    ProStrategy p3(space, o3);
    clean_k1 += run_session(p1, m1, {.steps = 150}).best_clean;
    clean_k3 += run_session(p3, m3, {.steps = 150}).best_clean;
  }
  EXPECT_LE(clean_k3, clean_k1 * 1.05);
}

TEST(Pro, TunesGs2DatabaseToGoodConfiguration) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  auto db = std::make_shared<gs2::Database>(
      gs2::Database::measure(space, surface, {}));
  auto machine = clean_cluster(db, 6);
  ProStrategy pro(space, {});
  const SessionResult res = run_session(pro, machine, {.steps = 200});
  EXPECT_TRUE(space.admissible(res.best));
  EXPECT_LT(res.best_clean, db->clean_time(space.center()));
}

TEST(Pro, NameReflectsOptions) {
  ProOptions opts;
  opts.samples = 4;
  opts.use_2n_simplex = false;
  ProStrategy pro(int_box(), opts);
  const std::string n = pro.name();
  EXPECT_NE(n.find("K=4"), std::string::npos);
  EXPECT_NE(n.find("N+1"), std::string::npos);
}

}  // namespace
}  // namespace protuner::core
