// Integration tests: the thread-based SPMD substrate and the Harmony-style
// client/server tuning protocol driven by real concurrent ranks.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "comm/spmd.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "harmony/server.h"

namespace protuner {
namespace {

TEST(Spmd, AllRanksRun) {
  std::atomic<int> count{0};
  comm::spmd_run(4, [&](comm::Communicator& c) {
    EXPECT_EQ(c.size(), 4u);
    EXPECT_LT(c.rank(), 4u);
    ++count;
  });
  EXPECT_EQ(count.load(), 4);
}

TEST(Spmd, AllreduceMax) {
  std::vector<double> results(5, 0.0);
  comm::spmd_run(5, [&](comm::Communicator& c) {
    results[c.rank()] =
        c.allreduce_max(static_cast<double>(c.rank()) * 1.5);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 6.0);
}

TEST(Spmd, AllreduceMinAndSum) {
  std::vector<double> mins(4), sums(4);
  comm::spmd_run(4, [&](comm::Communicator& c) {
    const double v = static_cast<double>(c.rank()) + 1.0;  // 1..4
    mins[c.rank()] = c.allreduce_min(v);
    sums[c.rank()] = c.allreduce_sum(v);
  });
  for (double m : mins) EXPECT_DOUBLE_EQ(m, 1.0);
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 10.0);
}

TEST(Spmd, AllgatherOrdersByRank) {
  comm::spmd_run(3, [&](comm::Communicator& c) {
    const auto all = c.allgather(static_cast<double>(c.rank()) * 10.0);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_DOUBLE_EQ(all[0], 0.0);
    EXPECT_DOUBLE_EQ(all[1], 10.0);
    EXPECT_DOUBLE_EQ(all[2], 20.0);
  });
}

TEST(Spmd, BroadcastFromRoot) {
  comm::spmd_run(4, [&](comm::Communicator& c) {
    const double v = c.broadcast(c.rank() == 2 ? 99.0 : -1.0, 2);
    EXPECT_DOUBLE_EQ(v, 99.0);
  });
}

TEST(Spmd, RepeatedCollectivesDoNotInterfere) {
  comm::spmd_run(3, [&](comm::Communicator& c) {
    for (int i = 0; i < 50; ++i) {
      const double m = c.allreduce_max(static_cast<double>(c.rank() + i));
      EXPECT_DOUBLE_EQ(m, static_cast<double>(2 + i));
    }
  });
}

TEST(Spmd, SingleRankWorld) {
  comm::spmd_run(1, [&](comm::Communicator& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(3.0), 3.0);
    EXPECT_DOUBLE_EQ(c.broadcast(5.0, 0), 5.0);
  });
}

// ------------------------------------------------------------------ harmony

core::ParameterSpace int_box() {
  return core::ParameterSpace({core::Parameter::integer("a", 0, 20),
                               core::Parameter::integer("b", 0, 20)});
}

TEST(Harmony, SequentialClientLoopTunes) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{5.0, 15.0}, 1.0, 0.2);
  harmony::Server server(
      std::make_unique<core::ProStrategy>(space, core::ProOptions{}), 4);
  // Drive all 4 "ranks" from one thread: fetch all, then report all.
  for (int step = 0; step < 150; ++step) {
    std::vector<core::Point> cfgs;
    for (std::size_t r = 0; r < 4; ++r) cfgs.push_back(server.fetch(r));
    for (std::size_t r = 0; r < 4; ++r) {
      server.report(r, land.clean_time(cfgs[r]));
    }
  }
  EXPECT_EQ(server.rounds_completed(), 150u);
  EXPECT_EQ(server.best_point(), (core::Point{5.0, 15.0}));
  EXPECT_GT(server.total_time(), 0.0);
  EXPECT_EQ(server.step_costs().size(), 150u);
}

TEST(Harmony, ConcurrentRanksReachSameResult) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{8.0, 2.0}, 1.0, 0.2);
  harmony::Server server(
      std::make_unique<core::ProStrategy>(space, core::ProOptions{}), 6);
  comm::spmd_run(6, [&](comm::Communicator& c) {
    harmony::Client client(server, c.rank());
    for (int step = 0; step < 120; ++step) {
      const core::Point cfg = client.fetch();
      client.report(land.clean_time(cfg));
    }
  });
  EXPECT_EQ(server.rounds_completed(), 120u);
  EXPECT_EQ(server.best_point(), (core::Point{8.0, 2.0}));
  EXPECT_TRUE(server.converged());
}

TEST(Harmony, StepCostIsMaxAcrossRanks) {
  // One round with a known per-rank cost pattern.
  const auto space = int_box();
  harmony::Server server(
      std::make_unique<core::ProStrategy>(space, core::ProOptions{}), 3);
  std::vector<core::Point> cfgs;
  for (std::size_t r = 0; r < 3; ++r) cfgs.push_back(server.fetch(r));
  server.report(0, 1.0);
  server.report(1, 9.0);
  server.report(2, 3.0);
  ASSERT_EQ(server.step_costs().size(), 1u);
  EXPECT_DOUBLE_EQ(server.step_costs()[0], 9.0);
  EXPECT_DOUBLE_EQ(server.total_time(), 9.0);
}

TEST(Harmony, PadsIdleRanksWithBestConfig) {
  // PRO's expansion-check round proposes a single point; the other ranks
  // must still receive a configuration to run.
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{5.0, 5.0}, 1.0, 0.2);
  harmony::Server server(
      std::make_unique<core::ProStrategy>(space, core::ProOptions{}), 8);
  for (int step = 0; step < 60; ++step) {
    std::vector<core::Point> cfgs;
    for (std::size_t r = 0; r < 8; ++r) {
      cfgs.push_back(server.fetch(r));
      EXPECT_TRUE(space.admissible(cfgs.back()));
    }
    for (std::size_t r = 0; r < 8; ++r) {
      server.report(r, land.clean_time(cfgs[r]));
    }
  }
  EXPECT_EQ(server.rounds_completed(), 60u);
}

}  // namespace
}  // namespace protuner
