// Tests for the live blocked-matmul kernel substrate.
#include <gtest/gtest.h>

#include "apps/blocked_matmul.h"
#include "core/pro.h"
#include "core/session.h"

namespace protuner::apps {
namespace {

TEST(BlockedMatmul, BlockedMatchesReferenceForManyBlockings) {
  BlockedMatmul mm(32);
  mm.run_reference();
  for (std::size_t bi : {1u, 4u, 8u, 32u}) {
    for (std::size_t bk : {2u, 16u, 32u}) {
      (void)mm.run(bi, 8, bk);
      EXPECT_LT(mm.max_error(), 1e-9)
          << "bi=" << bi << " bk=" << bk;
    }
  }
}

TEST(BlockedMatmul, ChecksumStableAcrossBlockings) {
  BlockedMatmul mm(24);
  (void)mm.run(4, 4, 4);
  const double c1 = mm.checksum();
  (void)mm.run(24, 24, 24);
  EXPECT_NEAR(mm.checksum(), c1, 1e-9);
}

TEST(BlockedMatmul, RunReturnsPositiveTime) {
  BlockedMatmul mm(32);
  EXPECT_GT(mm.run(8, 8, 8), 0.0);
}

TEST(BlockedMatmul, BlockSizesClamped) {
  BlockedMatmul mm(16);
  mm.run_reference();
  (void)mm.run(0, 999, 3);  // clamped to [1, n]
  EXPECT_LT(mm.max_error(), 1e-9);
}

TEST(BlockedMatmul, TuningSpaceShape) {
  const auto space = BlockedMatmul::tuning_space(64);
  ASSERT_EQ(space.size(), 3u);
  // 4, 8, 16, 32, 64.
  EXPECT_EQ(space.param(0).values().size(), 5u);
  EXPECT_TRUE(space.admissible(core::Point{4.0, 64.0, 16.0}));
  EXPECT_FALSE(space.admissible(core::Point{5.0, 64.0, 16.0}));
}

TEST(BlockedMatmul, TuningSpaceIncludesFullSizeForNonPowerOfTwo) {
  const auto space = BlockedMatmul::tuning_space(48);
  const auto& vals = space.param(0).values();
  EXPECT_DOUBLE_EQ(vals.back(), 48.0);
}

TEST(MatmulEvaluator, RunsAssignmentsAndTimesThem) {
  MatmulEvaluator machine(24, 3);
  const std::vector<core::Point> cfgs{
      {8.0, 8.0, 8.0}, {24.0, 24.0, 24.0}, {4.0, 4.0, 4.0}};
  const auto times = machine.run_step(cfgs);
  ASSERT_EQ(times.size(), 3u);
  for (double t : times) EXPECT_GT(t, 0.0);
}

TEST(MatmulEvaluator, EndToEndTuningSessionCompletes) {
  // Small matrices keep this test fast; the point is the full pipeline on
  // real measurements.
  MatmulEvaluator machine(24, 4);
  const auto space = BlockedMatmul::tuning_space(24);
  core::ProStrategy pro(space, {});
  const core::SessionResult r =
      core::run_session(pro, machine, {.steps = 30});
  EXPECT_TRUE(space.admissible(r.best));
  EXPECT_GT(r.total_time, 0.0);
  EXPECT_EQ(r.step_costs.size(), 30u);
}

}  // namespace
}  // namespace protuner::apps
