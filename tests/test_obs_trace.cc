// obs::Tracer contract tests: span nesting across the RoundEngine phases,
// Chrome trace_event JSON validity (parsed back by a minimal JSON reader),
// sampling, ring wrap-around, and the disabled path recording nothing and
// allocating nothing (counting global operator new, the test_step_alloc
// pattern — this TU owns its executable).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/fixed.h"
#include "core/round_engine.h"
#include "obs/trace.h"
#include "varmodel/simple_noise.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace protuner {
namespace {

using obs::ScopedSpan;
using obs::Tracer;
using obs::TraceSpan;

/// Minimal recursive-descent JSON reader: accepts exactly the RFC 8259
/// grammar (objects, arrays, strings with escapes, numbers, literals) and
/// nothing else.  Enough to prove the exporter emits parseable JSON.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') { ++i_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') { ++i_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    }
    return true;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

/// Enables the global tracer for one test and restores "disabled" after —
/// the engine's span sites record into Tracer::global() only.
class GlobalTraceGuard {
 public:
  explicit GlobalTraceGuard(std::uint64_t sample_every = 1) {
    Tracer::global().configure(true, sample_every);
    Tracer::global().clear();
  }
  ~GlobalTraceGuard() { Tracer::global().configure(false); }
};

std::vector<TraceSpan> spans_named(const std::vector<TraceSpan>& spans,
                                   const std::string& name) {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans) {
    if (s.name != nullptr && name == s.name) out.push_back(s);
  }
  return out;
}

TEST(Tracing, SpansNestAcrossRoundEnginePhases) {
  const GlobalTraceGuard guard;
  auto land = std::make_shared<core::QuadraticLandscape>(core::Point{2.0},
                                                         1.0, 0.1);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 4, .seed = 5});
  core::FixedStrategy fx(core::Point{1.0});
  core::RoundEngineOptions opts;
  opts.width = 4;
  core::RoundEngine engine(fx, opts);
  constexpr int kSteps = 10;
  for (int i = 0; i < kSteps; ++i) engine.step(machine);

  const std::vector<TraceSpan> spans = Tracer::global().snapshot();
  const auto steps = spans_named(spans, "round/step");
  const auto assigns = spans_named(spans, "round/assign");
  const auto collects = spans_named(spans, "round/collect");
  const auto advances = spans_named(spans, "round/advance");
  ASSERT_EQ(steps.size(), static_cast<std::size_t>(kSteps));
  ASSERT_EQ(assigns.size(), static_cast<std::size_t>(kSteps));
  ASSERT_EQ(collects.size(), static_cast<std::size_t>(kSteps));
  ASSERT_EQ(advances.size(), static_cast<std::size_t>(kSteps));

  for (const TraceSpan& s : steps) EXPECT_EQ(s.depth, 0);
  // Every phase span sits strictly inside one step span, one level down.
  for (const auto* phase : {&assigns, &collects, &advances}) {
    for (const TraceSpan& p : *phase) {
      EXPECT_EQ(p.depth, 1);
      bool contained = false;
      for (const TraceSpan& s : steps) {
        if (p.start_ns >= s.start_ns &&
            p.start_ns + p.dur_ns <= s.start_ns + s.dur_ns) {
          contained = true;
          break;
        }
      }
      EXPECT_TRUE(contained) << p.name << " span not inside any round/step";
    }
  }
  // Within one step: assign before collect before advance.
  EXPECT_LE(assigns[0].start_ns + assigns[0].dur_ns, collects[0].start_ns);
  EXPECT_LE(collects[0].start_ns + collects[0].dur_ns, advances[0].start_ns);
}

TEST(Tracing, ChromeExporterEmitsParseableJson) {
  const GlobalTraceGuard guard;
  {
    const ScopedSpan outer(Tracer::global(), "outer \"quoted\"");
    const ScopedSpan inner(Tracer::global(), "inner");
  }
  std::ostringstream out;
  Tracer::global().write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_TRUE(JsonReader(text).parse()) << text;
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"protuner\""), std::string::npos);
  // The span names survive into the JSON (escaped).
  EXPECT_NE(text.find("inner"), std::string::npos);
}

TEST(Tracing, DisabledTracerRecordsNothingAndAllocatesNothing) {
  Tracer tracer;  // disabled by default, like OBS_TRACE unset/0
  ASSERT_FALSE(tracer.enabled());
  const std::size_t before = allocation_count();
  for (int i = 0; i < 10000; ++i) {
    const ScopedSpan span(tracer, "noop");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(allocation_count(), before)
      << "disabled tracing touched the heap";
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracing, EnabledSteadyStateDoesNotAllocateAfterRingCreation) {
  Tracer tracer;
  tracer.configure(true, 1, 1024);
  { const ScopedSpan warm(tracer, "warm"); }  // creates this thread's ring
  const std::size_t before = allocation_count();
  for (int i = 0; i < 5000; ++i) {
    const ScopedSpan span(tracer, "steady");
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state span recording allocated";
  EXPECT_EQ(tracer.snapshot().size(), 1024u);  // ring full, wrapped
}

TEST(Tracing, SamplerRecordsOneInN) {
  Tracer tracer;
  tracer.configure(true, 3);
  for (int i = 0; i < 9; ++i) {
    const ScopedSpan span(tracer, "sampled");
  }
  EXPECT_EQ(tracer.snapshot().size(), 3u);
}

TEST(Tracing, RingWrapKeepsTheNewestSpans) {
  Tracer tracer;
  tracer.configure(true, 1, 8);
  static const char* const kNames[20] = {
      "s0",  "s1",  "s2",  "s3",  "s4",  "s5",  "s6",  "s7",  "s8",  "s9",
      "s10", "s11", "s12", "s13", "s14", "s15", "s16", "s17", "s18", "s19"};
  for (int i = 0; i < 20; ++i) {
    const ScopedSpan span(tracer, kNames[i]);
  }
  const std::vector<TraceSpan> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Oldest surviving span is s12, newest s19, in order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_STREQ(spans[static_cast<std::size_t>(i)].name, kNames[12 + i]);
  }
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
}

}  // namespace
}  // namespace protuner
