// obs::Tracer contract tests: span nesting across the RoundEngine phases,
// Chrome trace_event JSON validity (parsed back by a minimal JSON reader),
// sampling, ring wrap-around, and the disabled path recording nothing and
// allocating nothing (counting global operator new, the test_step_alloc
// pattern — this TU owns its executable).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/fixed.h"
#include "core/round_engine.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "varmodel/simple_noise.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace protuner {
namespace {

using obs::ScopedSpan;
using obs::Tracer;
using obs::TraceSpan;

/// Minimal recursive-descent JSON reader: accepts exactly the RFC 8259
/// grammar (objects, arrays, strings with escapes, numbers, literals) and
/// nothing else.  Enough to prove the exporter emits parseable JSON.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') { ++i_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') { ++i_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    }
    return true;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

/// Enables the global tracer for one test and restores "disabled" after —
/// the engine's span sites record into Tracer::global() only.
class GlobalTraceGuard {
 public:
  explicit GlobalTraceGuard(std::uint64_t sample_every = 1) {
    Tracer::global().configure(true, sample_every);
    Tracer::global().clear();
  }
  ~GlobalTraceGuard() { Tracer::global().configure(false); }
};

std::vector<TraceSpan> spans_named(const std::vector<TraceSpan>& spans,
                                   const std::string& name) {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans) {
    if (s.name != nullptr && name == s.name) out.push_back(s);
  }
  return out;
}

TEST(Tracing, SpansNestAcrossRoundEnginePhases) {
  const GlobalTraceGuard guard;
  auto land = std::make_shared<core::QuadraticLandscape>(core::Point{2.0},
                                                         1.0, 0.1);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 4, .seed = 5});
  core::FixedStrategy fx(core::Point{1.0});
  core::RoundEngineOptions opts;
  opts.width = 4;
  core::RoundEngine engine(fx, opts);
  constexpr int kSteps = 10;
  for (int i = 0; i < kSteps; ++i) engine.step(machine);

  const std::vector<TraceSpan> spans = Tracer::global().snapshot();
  const auto steps = spans_named(spans, "round/step");
  const auto assigns = spans_named(spans, "round/assign");
  const auto collects = spans_named(spans, "round/collect");
  const auto advances = spans_named(spans, "round/advance");
  ASSERT_EQ(steps.size(), static_cast<std::size_t>(kSteps));
  ASSERT_EQ(assigns.size(), static_cast<std::size_t>(kSteps));
  ASSERT_EQ(collects.size(), static_cast<std::size_t>(kSteps));
  ASSERT_EQ(advances.size(), static_cast<std::size_t>(kSteps));

  for (const TraceSpan& s : steps) EXPECT_EQ(s.depth, 0);
  // Every phase span sits strictly inside one step span, one level down.
  for (const auto* phase : {&assigns, &collects, &advances}) {
    for (const TraceSpan& p : *phase) {
      EXPECT_EQ(p.depth, 1);
      bool contained = false;
      for (const TraceSpan& s : steps) {
        if (p.start_ns >= s.start_ns &&
            p.start_ns + p.dur_ns <= s.start_ns + s.dur_ns) {
          contained = true;
          break;
        }
      }
      EXPECT_TRUE(contained) << p.name << " span not inside any round/step";
    }
  }
  // Within one step: assign before collect before advance.
  EXPECT_LE(assigns[0].start_ns + assigns[0].dur_ns, collects[0].start_ns);
  EXPECT_LE(collects[0].start_ns + collects[0].dur_ns, advances[0].start_ns);
}

TEST(Tracing, ChromeExporterEmitsParseableJson) {
  const GlobalTraceGuard guard;
  {
    const ScopedSpan outer(Tracer::global(), "outer \"quoted\"");
    const ScopedSpan inner(Tracer::global(), "inner");
  }
  std::ostringstream out;
  Tracer::global().write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_TRUE(JsonReader(text).parse()) << text;
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"protuner\""), std::string::npos);
  // The span names survive into the JSON (escaped).
  EXPECT_NE(text.find("inner"), std::string::npos);
}

TEST(Tracing, DisabledTracerRecordsNothingAndAllocatesNothing) {
  Tracer tracer;  // disabled by default, like OBS_TRACE unset/0
  ASSERT_FALSE(tracer.enabled());
  const std::size_t before = allocation_count();
  for (int i = 0; i < 10000; ++i) {
    const ScopedSpan span(tracer, "noop");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(allocation_count(), before)
      << "disabled tracing touched the heap";
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracing, EnabledSteadyStateDoesNotAllocateAfterRingCreation) {
  Tracer tracer;
  tracer.configure(true, 1, 1024);
  { const ScopedSpan warm(tracer, "warm"); }  // creates this thread's ring
  const std::size_t before = allocation_count();
  for (int i = 0; i < 5000; ++i) {
    const ScopedSpan span(tracer, "steady");
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state span recording allocated";
  EXPECT_EQ(tracer.snapshot().size(), 1024u);  // ring full, wrapped
}

TEST(Tracing, SamplerRecordsOneInN) {
  Tracer tracer;
  tracer.configure(true, 3);
  for (int i = 0; i < 9; ++i) {
    const ScopedSpan span(tracer, "sampled");
  }
  EXPECT_EQ(tracer.snapshot().size(), 3u);
}

TEST(Tracing, TraceContextInstallsInheritsAndRestores) {
  using obs::ScopedTraceContext;
  using obs::TraceContext;
  EXPECT_FALSE(obs::current_trace_context());
  Tracer tracer;
  tracer.configure(true, 1);
  {
    const ScopedTraceContext outer(TraceContext{0xAB, 0x11});
    EXPECT_EQ(obs::current_trace_context().trace_id, 0xABu);
    { const ScopedSpan inherits(tracer, "inherits"); }
    {
      // Nested contexts stack: the inner round wins, then pops cleanly.
      const ScopedTraceContext inner(TraceContext{0xCD, 0x22});
      EXPECT_EQ(obs::current_trace_context().trace_id, 0xCDu);
      { const ScopedSpan nested(tracer, "nested"); }
    }
    EXPECT_EQ(obs::current_trace_context().trace_id, 0xABu);
    {
      // A client that learns the ids mid-span overrides its capture.
      ScopedSpan overridden(tracer, "overridden");
      ASSERT_TRUE(overridden.active());
      overridden.set_context(TraceContext{0xEF, 0x33});
    }
  }
  EXPECT_FALSE(obs::current_trace_context()) << "context leaked past scope";

  const std::vector<TraceSpan> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans_named(spans, "inherits").at(0).trace_id, 0xABu);
  EXPECT_EQ(spans_named(spans, "inherits").at(0).span_id, 0x11u);
  EXPECT_EQ(spans_named(spans, "nested").at(0).trace_id, 0xCDu);
  EXPECT_EQ(spans_named(spans, "overridden").at(0).trace_id, 0xEFu);
  EXPECT_EQ(spans_named(spans, "overridden").at(0).span_id, 0x33u);
}

TEST(Tracing, ContextIdsSurviveTheJsonExportAsHexTokens) {
  Tracer tracer;
  tracer.configure(true, 1);
  {
    const obs::ScopedTraceContext ctx(
        obs::TraceContext{0x00AB00CD00EF0012ull, 0x34u});
    const ScopedSpan span(tracer, "traced");
  }
  { const ScopedSpan plain(tracer, "plain"); }
  std::ostringstream out;
  tracer.write_chrome_trace(out, 7);
  const std::string text = out.str();
  EXPECT_TRUE(JsonReader(text).parse()) << text;
  EXPECT_NE(text.find("\"trace\":\"00ab00cd00ef0012\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"span\":\"0000000000000034\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\":7"), std::string::npos);
  // The untraced span carries no correlation args at all.
  std::vector<obs::MergedEvent> events;
  ASSERT_TRUE(obs::parse_chrome_trace(text, events));
  ASSERT_EQ(events.size(), 2u);
  bool saw_traced = false;
  bool saw_plain = false;
  for (const obs::MergedEvent& e : events) {
    if (e.name == "traced") {
      saw_traced = true;
      EXPECT_EQ(e.trace_id, "00ab00cd00ef0012");
      EXPECT_EQ(e.span_id, "0000000000000034");
    }
    if (e.name == "plain") {
      saw_plain = true;
      EXPECT_TRUE(e.trace_id.empty());
    }
  }
  EXPECT_TRUE(saw_traced);
  EXPECT_TRUE(saw_plain);
}

TEST(Tracing, ExportAfterRingWrapIsTimeSortedAndParseable) {
  // Regression: ring wrap makes raw ring order non-monotonic (the slot
  // after the newest span holds the oldest survivor), and multiple thread
  // rings interleave arbitrarily.  The exporter must sort by timestamp or
  // trace viewers render garbage.
  Tracer tracer;
  tracer.configure(true, 1, 8);  // tiny ring: 24 spans per thread wrap it 3x
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 24; ++i) {
        const ScopedSpan span(tracer, "wrapped");
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(tracer.snapshot().size(), 16u);  // both rings full

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_TRUE(JsonReader(text).parse()) << text;

  std::vector<obs::MergedEvent> events;
  ASSERT_TRUE(obs::parse_chrome_trace(text, events));
  ASSERT_EQ(events.size(), 16u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us)
        << "export not time-sorted at event " << i;
  }
}

TEST(Tracing, RingWrapKeepsTheNewestSpans) {
  Tracer tracer;
  tracer.configure(true, 1, 8);
  static const char* const kNames[20] = {
      "s0",  "s1",  "s2",  "s3",  "s4",  "s5",  "s6",  "s7",  "s8",  "s9",
      "s10", "s11", "s12", "s13", "s14", "s15", "s16", "s17", "s18", "s19"};
  for (int i = 0; i < 20; ++i) {
    const ScopedSpan span(tracer, kNames[i]);
  }
  const std::vector<TraceSpan> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Oldest surviving span is s12, newest s19, in order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_STREQ(spans[static_cast<std::size_t>(i)].name, kNames[12 + i]);
  }
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
}

}  // namespace
}  // namespace protuner
