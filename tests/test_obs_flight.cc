// obs::FlightRecorder contract tests: ring-wrap retention (newest N
// survive, recorded() keeps the true total), tag truncation into the
// fixed-width slot, the human-readable dump, the async-signal-safe
// request/consume handshake, and — with a counting global operator new,
// the test_step_alloc pattern (this TU owns its executable) — proof that
// record() never touches the heap once the ring exists.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace protuner {
namespace {

using obs::FlightEvent;
using obs::FlightRecorder;

TEST(FlightRecorder, RingWrapKeepsTheNewestEvents) {
  FlightRecorder rec(8);
  static const char* const kKinds[3] = {"round/open", "report", "round/close"};
  for (std::uint32_t i = 0; i < 20; ++i) {
    rec.record(kKinds[i % 3], "sess", i, i / 3, static_cast<double>(i));
  }
  EXPECT_EQ(rec.recorded(), 20u);
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are events 12..19, oldest first, timestamps monotone.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint32_t n = static_cast<std::uint32_t>(12 + i);
    EXPECT_EQ(events[i].rank, n);
    EXPECT_STREQ(events[i].kind, kKinds[n % 3]);
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(n));
    if (i > 0) EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
  rec.clear();
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorder, SessionTagIsCopiedAndTruncated) {
  FlightRecorder rec(4);
  rec.record("round/open", "short");
  const std::string long_name(64, 'x');
  rec.record("round/open", long_name);
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].tag, "short");
  // The tag slot is fixed-width with a guaranteed NUL.
  const std::string tag = events[1].tag;
  EXPECT_LT(tag.size(), sizeof(events[1].tag));
  EXPECT_EQ(tag, long_name.substr(0, tag.size()));
}

TEST(FlightRecorder, DumpRendersATimeline) {
  FlightRecorder rec(16);
  rec.record("fetch/park", "dumped", 3, 7);
  rec.record("rank/impute", "dumped", 1, 7, 2.5);
  std::ostringstream out;
  rec.dump(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("fetch/park"), std::string::npos) << text;
  EXPECT_NE(text.find("rank/impute"), std::string::npos);
  EXPECT_NE(text.find("dumped"), std::string::npos);
}

TEST(FlightRecorder, DumpRequestHandshakeFiresExactlyOnce) {
  FlightRecorder rec(4);
  EXPECT_FALSE(rec.consume_dump_request());
  rec.request_dump();
  rec.request_dump();  // coalesces: still one pending dump
  EXPECT_TRUE(rec.consume_dump_request());
  EXPECT_FALSE(rec.consume_dump_request());
}

TEST(FlightRecorder, Sigusr1RequestsADumpOnTheGlobalRecorder) {
  FlightRecorder::install_sigusr1_handler();
  (void)FlightRecorder::global().consume_dump_request();  // drain leftovers
  ASSERT_EQ(::raise(SIGUSR1), 0);
  EXPECT_TRUE(FlightRecorder::global().consume_dump_request());
  EXPECT_FALSE(FlightRecorder::global().consume_dump_request());
}

TEST(FlightRecorder, RecordIsAllocationFree) {
  FlightRecorder rec(128);
  rec.record("warm", "warm");  // nothing to warm, but symmetry is cheap
  const std::size_t before = allocation_count();
  for (std::uint32_t i = 0; i < 10000; ++i) {
    rec.record("round/close", "alloc-free-session-name", i, i,
               static_cast<double>(i));
  }
  EXPECT_EQ(allocation_count(), before)
      << "flight-recorder record() touched the heap";
  EXPECT_EQ(rec.recorded(), 10001u);
}

TEST(FlightRecorder, ConcurrentRecordAndSnapshotStayConsistent) {
  FlightRecorder rec(64);
  std::atomic<bool> stop{false};
  std::thread writer([&rec, &stop] {
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      rec.record("round/open", "hammer", i++, i);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const std::vector<FlightEvent> events = rec.snapshot();
    EXPECT_LE(events.size(), 64u);
    for (std::size_t k = 1; k < events.size(); ++k) {
      EXPECT_GE(events[k].ts_ns, events[k - 1].ts_ns);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace protuner
