// Tests for the message-passing Harmony protocol (dedicated server rank,
// point-to-point fetch/report).
#include <gtest/gtest.h>

#include <memory>

#include "comm/spmd.h"
#include "core/fixed.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "harmony/message_protocol.h"

namespace protuner {
namespace {

core::ParameterSpace int_box() {
  return core::ParameterSpace({core::Parameter::integer("a", 0, 20),
                               core::Parameter::integer("b", 0, 20)});
}

TEST(MessageProtocol, TunesQuadraticEndToEnd) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{6.0, 14.0}, 1.0, 0.2);
  harmony::MessageServerResult result;

  comm::spmd_run(5, [&](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      result = harmony::run_message_server(
          comm, std::make_unique<core::ProStrategy>(space, core::ProOptions{}),
          4);
    } else {
      harmony::MessageClient client(comm, 0);
      for (int step = 0; step < 200; ++step) {
        const core::Point cfg = client.fetch();
        client.report(land.clean_time(cfg));
      }
      client.goodbye();
    }
  });

  EXPECT_EQ(result.rounds, 200u);
  EXPECT_EQ(result.best, (core::Point{6.0, 14.0}));
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.total_time, 0.0);
}

TEST(MessageProtocol, SingleClientWorks) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{4.0, 4.0}, 1.0, 0.2);
  harmony::MessageServerResult result;

  comm::spmd_run(2, [&](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      result = harmony::run_message_server(
          comm, std::make_unique<core::ProStrategy>(space, core::ProOptions{}),
          1);
    } else {
      harmony::MessageClient client(comm, 0);
      for (int step = 0; step < 100; ++step) {
        const core::Point cfg = client.fetch();
        EXPECT_TRUE(space.admissible(cfg));
        client.report(land.clean_time(cfg));
      }
      client.goodbye();
    }
  });
  EXPECT_EQ(result.rounds, 100u);
}

TEST(MessageProtocol, ServerOnNonZeroRank) {
  const auto space = int_box();
  const core::QuadraticLandscape land(core::Point{10.0, 2.0}, 1.0, 0.3);
  harmony::MessageServerResult result;
  constexpr std::size_t kServer = 2;

  comm::spmd_run(4, [&](comm::Communicator& comm) {
    if (comm.rank() == kServer) {
      result = harmony::run_message_server(
          comm, std::make_unique<core::ProStrategy>(space, core::ProOptions{}),
          3);
    } else {
      harmony::MessageClient client(comm, kServer);
      for (int step = 0; step < 150; ++step) {
        const core::Point cfg = client.fetch();
        client.report(land.clean_time(cfg));
      }
      client.goodbye();
    }
  });
  EXPECT_EQ(result.rounds, 150u);
  EXPECT_EQ(result.best, (core::Point{10.0, 2.0}));
}

TEST(MessageProtocol, FixedStrategyDistributesSameConfig) {
  harmony::MessageServerResult result;
  comm::spmd_run(3, [&](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      result = harmony::run_message_server(
          comm, std::make_unique<core::FixedStrategy>(core::Point{3.0, 4.0}),
          2);
    } else {
      harmony::MessageClient client(comm, 0);
      for (int step = 0; step < 10; ++step) {
        const core::Point cfg = client.fetch();
        EXPECT_EQ(cfg, (core::Point{3.0, 4.0}));
        client.report(1.0);
      }
      client.goodbye();
    }
  });
  EXPECT_EQ(result.rounds, 10u);
  EXPECT_DOUBLE_EQ(result.total_time, 10.0);
}

}  // namespace
}  // namespace protuner
