// Batch-vs-scalar stream equivalence for the noise layer.
//
// The contract behind the zero-allocation hot path: for every NoiseModel,
// sample_batch(clean, rngs, out) must be *bit-identical* to the scalar
// per-rank loop `out[i] = sample(clean[i], rngs[i])` — same sample values
// AND the same RNG end state for every stream — across repeated batches.
// That contract is what makes the batched SimulatedCluster reproduce the
// scalar cluster's traces byte for byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/simd.h"
#include "varmodel/ar1_noise.h"
#include "varmodel/burst_noise.h"
#include "varmodel/composite_noise.h"
#include "varmodel/noise_model.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/simple_noise.h"

namespace protuner::varmodel {
namespace {

// Every equivalence check runs at these widths: the degenerate single
// stream, an odd width that defeats accidental unrolling assumptions, and
// a bench-sized batch.
constexpr std::size_t kRankCounts[] = {1, 7, 64};
constexpr int kBatches = 5;  // consecutive rounds (exercises stateful models)

std::vector<double> clean_times(std::size_t ranks) {
  std::vector<double> clean(ranks);
  for (std::size_t i = 0; i < ranks; ++i) {
    clean[i] = 0.5 + 0.37 * static_cast<double>(i % 9);
  }
  return clean;
}

// Runs `model_scalar` through the per-rank scalar loop and `model_batch`
// through sample_batch over kBatches consecutive rounds, demanding
// bit-identical outputs and identical RNG end states after every round.
// Stateful models (Ar1, Burst, Trace cursors) need two separately
// constructed but identically configured instances, hence the pair.
void ExpectStreamEquivalent(const NoiseModel& model_scalar,
                            const NoiseModel& model_batch) {
  // This suite pins the DETERMINISTIC path's bit-identity contract; the
  // PROTUNER_FAST_MATH opt-in deliberately relaxes it (ULP-bounded,
  // covered by test_simd_math), so force the knob off regardless of the
  // environment the suite runs under.
  util::simd::set_fast_math(false);
  for (std::size_t ranks : kRankCounts) {
    std::vector<util::Rng> rngs_scalar = util::Rng(1234).split_streams(ranks);
    std::vector<util::Rng> rngs_batch = util::Rng(1234).split_streams(ranks);
    const std::vector<double> clean = clean_times(ranks);
    std::vector<double> out_scalar(ranks), out_batch(ranks);
    for (int round = 0; round < kBatches; ++round) {
      for (std::size_t i = 0; i < ranks; ++i) {
        out_scalar[i] = model_scalar.sample(clean[i], rngs_scalar[i]);
      }
      model_batch.sample_batch({clean.data(), ranks},
                               {rngs_batch.data(), ranks},
                               {out_batch.data(), ranks});
      for (std::size_t i = 0; i < ranks; ++i) {
        // EXPECT_EQ on doubles: bit-identity is the contract, not
        // closeness.  (All values here are finite and non-NaN.)
        EXPECT_EQ(out_scalar[i], out_batch[i])
            << model_scalar.name() << ": rank " << i << " of " << ranks
            << ", round " << round;
        EXPECT_TRUE(rngs_scalar[i] == rngs_batch[i])
            << model_scalar.name() << ": rng state diverged at rank " << i
            << " of " << ranks << ", round " << round;
      }
    }
  }
}

TEST(NoiseBatch, NoNoise) {
  NoNoise m1, m2;
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, Exponential) {
  ExponentialNoise m1(0.3), m2(0.3);
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, ExponentialZeroRhoDrawsNothing) {
  ExponentialNoise m1(0.0), m2(0.0);
  ExpectStreamEquivalent(m1, m2);  // also checks rngs stay untouched
}

TEST(NoiseBatch, Gaussian) {
  GaussianNoise m1(0.25, 0.5), m2(0.25, 0.5);
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, Pareto) {
  ParetoNoise m1(0.3, 1.7), m2(0.3, 1.7);
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, ParetoZeroRhoDrawsNothing) {
  ParetoNoise m1(0.0, 1.7), m2(0.0, 1.7);
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, Trace) {
  // TraceNoise advances a shared cursor per sample; the batch default must
  // walk it in the same rank order as the scalar loop.
  const std::vector<double> trace{0.0, 0.1, 0.05, 0.3, 0.02};
  TraceNoise m1(trace), m2(trace);
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, Ar1) {
  Ar1Config cfg;
  cfg.rho = 0.2;
  cfg.seed = 77;
  Ar1Noise m1(cfg), m2(cfg);
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, Burst) {
  BurstConfig cfg;
  cfg.rho = 0.25;
  cfg.seed = 78;
  BurstNoise m1(cfg), m2(cfg);
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, CompositeOfBatchedComponents) {
  // Both components override sample_batch: per-stream draw order must stay
  // a-then-b even though the batch path runs a's whole block first.
  CompositeNoise m1(std::make_shared<ExponentialNoise>(0.1),
                    std::make_shared<ParetoNoise>(0.2, 1.7));
  CompositeNoise m2(std::make_shared<ExponentialNoise>(0.1),
                    std::make_shared<ParetoNoise>(0.2, 1.7));
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, CompositeMixedScalarAndBatchedComponents) {
  // One component on the scalar fallback, one batched.
  CompositeNoise m1(std::make_shared<GaussianNoise>(0.15, 0.4),
                    std::make_shared<ParetoNoise>(0.2, 1.7));
  CompositeNoise m2(std::make_shared<GaussianNoise>(0.15, 0.4),
                    std::make_shared<ParetoNoise>(0.2, 1.7));
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, NestedComposite) {
  // Equivalence must compose recursively: (exp + (pareto + gaussian)).
  auto make = [] {
    return CompositeNoise(
        std::make_shared<ExponentialNoise>(0.1),
        std::make_shared<CompositeNoise>(
            std::make_shared<ParetoNoise>(0.15, 1.9),
            std::make_shared<GaussianNoise>(0.05, 0.3)));
  };
  CompositeNoise m1 = make(), m2 = make();
  ExpectStreamEquivalent(m1, m2);
}

TEST(NoiseBatch, CompositeWithSharedCursorTrace) {
  // TraceNoise's cursor is shared across ranks; block-batching the trace
  // component still visits ranks in ascending order, so the cursor walk
  // matches the scalar interleaving.
  const std::vector<double> trace{0.2, 0.0, 0.4};
  auto make = [&trace] {
    return CompositeNoise(std::make_shared<TraceNoise>(trace),
                          std::make_shared<ParetoNoise>(0.2, 1.7));
  };
  CompositeNoise m1 = make(), m2 = make();
  ExpectStreamEquivalent(m1, m2);
}

}  // namespace
}  // namespace protuner::varmodel
