// ULP-bounded equivalence suite for the util::simd fast-math kernels.
//
// Three layers of contract, from strongest to weakest:
//   1. Backend bit-identity: the batch entry points must reproduce the
//      scalar detail:: reference kernels bit for bit on every size and
//      tail length (on this machine that pins vector == scalar; on a
//      forced-scalar build it pins the dispatch plumbing).
//   2. ULP bounds vs libm: fast_exp/fast_log/fast_pow are polynomial
//      approximations — close to libm, never bit-equal.  The bounds here
//      carry slack over the measured maxima (exp ~1 ulp, log ~2, pow ~4)
//      so a different libm cannot flake the suite.
//   3. Opt-in isolation: with fast math OFF (the shipping default) the
//      noise models and the database interpolation paths must reproduce
//      golden values captured from the pre-simd binaries exactly; with it
//      ON they must stay within tight relative bounds AND leave every rng
//      stream in the bit-identical end state.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/landscape.h"
#include "core/parameter_space.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/rng.h"
#include "util/simd.h"
#include "varmodel/composite_noise.h"
#include "varmodel/noise_model.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/simple_noise.h"

namespace protuner {
namespace {

namespace simd = util::simd;

/// RAII knob guard: every test states its fast-math mode explicitly and
/// restores the process-wide default on exit, so test order cannot leak
/// state.
class FastMathGuard {
 public:
  explicit FastMathGuard(bool on) : prev_(simd::fast_math_enabled()) {
    simd::set_fast_math(on);
  }
  ~FastMathGuard() { simd::set_fast_math(prev_); }

 private:
  bool prev_;
};

/// ULP distance between two finite doubles via the ordered-integer mapping
/// (monotone across exponent boundaries, 0 for +0.0 vs -0.0).
std::uint64_t ulp_distance(double a, double b) {
  auto ordered = [](double x) -> std::int64_t {
    const std::int64_t bits = std::bit_cast<std::int64_t>(x);
    return bits >= 0 ? bits : std::numeric_limits<std::int64_t>::min() - bits;
  };
  const std::int64_t ia = ordered(a);
  const std::int64_t ib = ordered(b);
  return ia > ib ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
                 : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

constexpr std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 64, 257};

TEST(SimdMath, KnobAndBackendReporting) {
  {
    FastMathGuard on(true);
    EXPECT_TRUE(simd::fast_math_enabled());
    {
      FastMathGuard off(false);
      EXPECT_FALSE(simd::fast_math_enabled());
    }
    EXPECT_TRUE(simd::fast_math_enabled());
  }
  ASSERT_NE(simd::backend_name(), nullptr);
  if (simd::vector_isa_available()) {
    EXPECT_STRNE(simd::backend_name(), "scalar");
  } else {
    EXPECT_STREQ(simd::backend_name(), "scalar");
  }
}

TEST(SimdMath, FastExpMatchesLibmWithinUlps) {
  util::Rng rng(101);
  for (int i = 0; i < 20000; ++i) {
    // Dense around the noise-transform range, coarse across the full domain.
    const double x = (i % 2 == 0) ? rng.uniform(-40.0, 40.0)
                                  : rng.uniform(-700.0, 700.0);
    const double got = simd::detail::fast_exp(x);
    const double want = std::exp(x);
    EXPECT_LE(ulp_distance(got, want), 8u) << "x=" << x;
  }
}

TEST(SimdMath, FastLogMatchesLibmWithinUlps) {
  util::Rng rng(102);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform positives, covering both tails of the normal range and
    // the (0, 1] bases the noise transforms feed it.
    const double x = (i % 2 == 0) ? 1.0 - rng.uniform()
                                  : std::exp(rng.uniform(-600.0, 600.0));
    if (x <= 0.0) continue;  // 1 - u can round to 0 only at u == 1, excluded
    const double got = simd::detail::fast_log(x);
    const double want = std::log(x);
    EXPECT_LE(ulp_distance(got, want), 8u) << "x=" << x;
  }
}

TEST(SimdMath, FastPowMatchesLibmWithinUlps) {
  // The composed kernel on exactly the Pareto inverse-CDF shape.
  util::Rng rng(103);
  for (const double alpha : {1.1, 1.7, 2.5, 4.0}) {
    const double e = -1.0 / alpha;
    for (int i = 0; i < 5000; ++i) {
      const double base = 1.0 - rng.uniform();
      const double got = simd::detail::fast_pow(base, e);
      const double want = std::pow(base, e);
      EXPECT_LE(ulp_distance(got, want), 16u)
          << "base=" << base << " e=" << e;
    }
  }
}

TEST(SimdMath, BatchKernelsMatchScalarReferenceBitForBit) {
  // The load-bearing backend contract: whatever ISA dispatches, the batch
  // output equals the scalar detail:: kernel per element, including every
  // tail length in kSizes.
  util::Rng rng(104);
  for (const std::size_t n : kSizes) {
    std::vector<double> xe(n), xl(n), u(n), scale(n), out(n);
    for (std::size_t i = 0; i < n; ++i) {
      xe[i] = rng.uniform(-700.0, 700.0);
      xl[i] = std::exp(rng.uniform(-500.0, 500.0));
      u[i] = rng.uniform();
      scale[i] = 0.25 + rng.uniform();
    }
    simd::exp_batch(xe.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], simd::detail::fast_exp(xe[i])) << "n=" << n;
    }
    simd::log_batch(xl.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], simd::detail::fast_log(xl[i])) << "n=" << n;
    }
    const double e = -1.0 / 1.7;
    const double k = 0.3;
    simd::pow1m_scale_batch(u.data(), e, k, scale.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], (k * scale[i]) * simd::detail::fast_pow(1.0 - u[i], e))
          << "n=" << n;
    }
    simd::neglog1m_scale_batch(u.data(), k, scale.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], (k * scale[i]) * -simd::detail::fast_log(1.0 - u[i]))
          << "n=" << n;
    }
  }
}

TEST(SimdMath, Dist2BlocksMatchesScalarFmaReduction) {
  util::Rng rng(105);
  for (const std::size_t dim : {std::size_t{1}, std::size_t{3},
                                std::size_t{7}}) {
    const std::size_t blocks = 9;
    std::vector<double> soa(blocks * dim * simd::kBlock);
    std::vector<double> x(dim), inv_range(dim);
    for (double& v : soa) v = rng.uniform(-3.0, 3.0);
    for (std::size_t d = 0; d < dim; ++d) {
      x[d] = rng.uniform(-3.0, 3.0);
      inv_range[d] = 1.0 / (0.5 + rng.uniform());
    }
    // Whole range and an offset sub-range (the leaf scan shape).
    const std::pair<std::size_t, std::size_t> ranges[] = {{0, blocks}, {2, 7}};
    for (const auto& [b0, b1] : ranges) {
      std::vector<double> out((b1 - b0) * simd::kBlock);
      simd::dist2_blocks(soa.data(), dim, b0, b1, x.data(), inv_range.data(),
                         out.data());
      for (std::size_t b = b0; b < b1; ++b) {
        for (std::size_t lane = 0; lane < simd::kBlock; ++lane) {
          double acc = 0.0;
          for (std::size_t d = 0; d < dim; ++d) {
            const double diff =
                (x[d] - soa[(b * dim + d) * simd::kBlock + lane]) *
                inv_range[d];
            acc = std::fma(diff, diff, acc);
          }
          EXPECT_EQ(out[(b - b0) * simd::kBlock + lane], acc)
              << "dim=" << dim << " b=" << b << " lane=" << lane;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Noise models: fast path vs deterministic path.

void ExpectFastPathCloseAndStreamIdentical(const varmodel::NoiseModel& model) {
  constexpr std::size_t kRankCounts[] = {1, 7, 64};
  for (const std::size_t ranks : kRankCounts) {
    std::vector<util::Rng> rngs_det = util::Rng(1234).split_streams(ranks);
    std::vector<util::Rng> rngs_fast = util::Rng(1234).split_streams(ranks);
    std::vector<double> clean(ranks), out_det(ranks), out_fast(ranks);
    for (std::size_t i = 0; i < ranks; ++i) {
      clean[i] = 0.5 + 0.37 * static_cast<double>(i % 9);
    }
    for (int round = 0; round < 5; ++round) {
      {
        FastMathGuard off(false);
        model.sample_batch({clean.data(), ranks}, {rngs_det.data(), ranks},
                           {out_det.data(), ranks});
      }
      {
        FastMathGuard on(true);
        model.sample_batch({clean.data(), ranks}, {rngs_fast.data(), ranks},
                           {out_fast.data(), ranks});
      }
      for (std::size_t i = 0; i < ranks; ++i) {
        // The draws are the contract (bit-identical streams); the transform
        // is the ULP-bounded approximation.
        EXPECT_TRUE(rngs_det[i] == rngs_fast[i])
            << model.name() << ": rng state diverged at rank " << i
            << " of " << ranks << ", round " << round;
        EXPECT_NEAR(out_fast[i], out_det[i],
                    1e-10 * std::max(1.0, std::abs(out_det[i])))
            << model.name() << ": rank " << i << " of " << ranks << ", round "
            << round;
      }
    }
  }
}

TEST(SimdMath, ParetoFastPathUlpBoundedAndStreamIdentical) {
  ExpectFastPathCloseAndStreamIdentical(varmodel::ParetoNoise(0.3, 1.7));
}

TEST(SimdMath, ExponentialFastPathUlpBoundedAndStreamIdentical) {
  ExpectFastPathCloseAndStreamIdentical(varmodel::ExponentialNoise(0.3));
}

TEST(SimdMath, CompositeFastPathUlpBoundedAndStreamIdentical) {
  ExpectFastPathCloseAndStreamIdentical(varmodel::CompositeNoise(
      std::make_shared<varmodel::ExponentialNoise>(0.1),
      std::make_shared<varmodel::ParetoNoise>(0.2, 1.7)));
}

// ---------------------------------------------------------------------------
// Database interpolation: fast path vs deterministic path, across the same
// (stride, k, power) settings the bit-identity suite uses.

TEST(SimdMath, DatabaseFastPathStaysWithinRelativeBound) {
  const gs2::Gs2Surface surface;
  const auto space = gs2::gs2_space();
  struct Setting {
    std::size_t stride;
    std::size_t neighbors;
    double power;
  };
  const Setting settings[] = {
      {2, 4, 2.0}, {1, 1, 2.0}, {2, 8, 1.0}, {3, 3, 3.0}};
  util::Rng rng(20260808);
  for (const Setting& s : settings) {
    const gs2::DatabaseOptions opt{.stride = s.stride,
                                   .interpolation_neighbors = s.neighbors,
                                   .idw_power = s.power};
    const gs2::Database db = gs2::Database::measure(space, surface, opt);
    for (int i = 0; i < 200; ++i) {
      core::Point x(space.size());
      for (std::size_t d = 0; d < space.size(); ++d) {
        x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
      }
      double ref_det, idx_det, ref_fast, idx_fast;
      {
        FastMathGuard off(false);
        ref_det = db.interpolate_reference(x);
        idx_det = db.interpolate_uncached(x);
      }
      {
        FastMathGuard on(true);
        ref_fast = db.interpolate_reference(x);
        idx_fast = db.interpolate_uncached(x);
      }
      // Deterministic paths agree bit for bit (also pinned elsewhere); the
      // fast paths deviate only at the fma/inv-range rounding level, which
      // stays far inside 1e-9 relative after the IDW power.
      EXPECT_EQ(idx_det, ref_det) << "stride=" << s.stride;
      const double tol = 1e-9 * std::max(1.0, std::abs(ref_det));
      EXPECT_NEAR(ref_fast, ref_det, tol)
          << "stride=" << s.stride << " k=" << s.neighbors << " i=" << i;
      EXPECT_NEAR(idx_fast, ref_det, tol)
          << "stride=" << s.stride << " k=" << s.neighbors << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Default-path regression: with fast math off (the shipping default) the
// noise and database hot paths must reproduce these golden values, captured
// from the pre-simd binaries, bit for bit.

TEST(SimdMath, DefaultPathReproducesPreSimdGoldenValues) {
  FastMathGuard off(false);
  std::vector<util::Rng> rngs = util::Rng(42).split_streams(7);
  std::vector<double> clean(7), out(7);
  for (int i = 0; i < 7; ++i) clean[i] = 0.5 + 0.37 * (i % 9);
  const varmodel::ParetoNoise pareto(0.3, 1.7);
  pareto.sample_batch({clean.data(), 7}, {rngs.data(), 7}, {out.data(), 7});
  const double golden_pareto[7] = {
      0.20075393242002817, 0.33809339844711522, 0.30314860813344785,
      0.81466970856365439, 1.3543098674330833,  0.42093449252586862,
      0.69455676648183851};
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], golden_pareto[i]) << i;
  const varmodel::ExponentialNoise expo(0.3);
  expo.sample_batch({clean.data(), 7}, {rngs.data(), 7}, {out.data(), 7});
  const double golden_exp[7] = {
      0.097660069129870644, 0.17359023603490623, 0.26449747702189835,
      0.88034193357865254,  0.26866906642551858, 0.94692371419231647,
      0.53605106239270184};
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], golden_exp[i]) << i;

  const gs2::Gs2Surface surface;
  const auto space = gs2::gs2_space();
  const gs2::Database db = gs2::Database::measure(space, surface, {});
  const core::Point q1{16.0, 9.0, 4.0};
  const core::Point q2{33.3, 17.7, 40.1};
  EXPECT_EQ(db.clean_time(q1), 0.3688857509110009);
  EXPECT_EQ(db.clean_time(q2), 0.59795764025428988);
  EXPECT_EQ(db.interpolate_reference(q2), 0.59795764025428988);
}

}  // namespace
}  // namespace protuner
