// Tests for the I/O utilities: CSV writer, ASCII plots and env parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/ascii_plot.h"
#include "util/csv.h"
#include "util/env.h"

namespace protuner::util {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b", "c"});
  csv.row(1, 2.5, "x");
  EXPECT_EQ(out.str(), "a,b,c\n1,2.5,x\n");
}

TEST(Csv, QuotesFieldsWithSeparator) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("hello,world", 1);
  EXPECT_EQ(out.str(), "\"hello,world\",1\n");
}

TEST(Csv, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("say \"hi\",now");
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\",now\"\n");
}

TEST(Csv, CustomSeparator) {
  std::ostringstream out;
  CsvWriter csv(out, ';');
  csv.row(1, 2);
  EXPECT_EQ(out.str(), "1;2\n");
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{1, 4, 9, 16, 25};
  PlotOptions po;
  po.title = "squares";
  const std::string plot = line_plot("sq", xs, ys, po);
  EXPECT_NE(plot.find("squares"), std::string::npos);
  EXPECT_NE(plot.find("[*] sq"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesHandled) {
  const std::string plot =
      line_plot("none", std::vector<double>{}, std::vector<double>{}, {});
  EXPECT_NE(plot.find("no plottable points"), std::string::npos);
}

TEST(AsciiPlot, LogAxesSkipNonPositive) {
  std::vector<double> xs{-1.0, 1.0, 10.0, 100.0};
  std::vector<double> ys{5.0, 1.0, 0.1, 0.01};
  PlotOptions po;
  po.log_x = true;
  po.log_y = true;
  const std::string plot = line_plot("ll", xs, ys, po);
  EXPECT_NE(plot.find('*'), std::string::npos);  // survives the bad point
}

TEST(AsciiPlot, MultiSeriesUsesDistinctGlyphs) {
  std::vector<Series> series{
      {"one", {1, 2, 3}, {1, 2, 3}},
      {"two", {1, 2, 3}, {3, 2, 1}},
  };
  const std::string plot = line_plot(series, {});
  EXPECT_NE(plot.find("[*] one"), std::string::npos);
  EXPECT_NE(plot.find("[o] two"), std::string::npos);
}

TEST(AsciiHistogram, BarsProportionalToCounts) {
  const std::vector<double> edges{0.0, 1.0, 2.0};
  const std::vector<double> counts{10.0, 5.0};
  const std::string plot = histogram_plot(edges, counts, {});
  // Two bin rows with hashes; first bar longer than second.
  const auto first = plot.find('#');
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(plot.find("10"), std::string::npos);
}

TEST(AsciiHistogram, MismatchedEdgesHandled) {
  const std::vector<double> edges{0.0, 1.0};
  const std::vector<double> counts{1.0, 2.0};  // wrong arity
  const std::string plot = histogram_plot(edges, counts, {});
  EXPECT_NE(plot.find("empty histogram"), std::string::npos);
}

TEST(Env, LongParsesAndFallsBack) {
  ::setenv("PROTUNER_TEST_LONG", "42", 1);
  EXPECT_EQ(env_long("PROTUNER_TEST_LONG", 7), 42);
  ::setenv("PROTUNER_TEST_LONG", "abc", 1);
  EXPECT_EQ(env_long("PROTUNER_TEST_LONG", 7), 7);
  ::unsetenv("PROTUNER_TEST_LONG");
  EXPECT_EQ(env_long("PROTUNER_TEST_LONG", 7), 7);
}

TEST(Env, DoubleParsesAndFallsBack) {
  ::setenv("PROTUNER_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("PROTUNER_TEST_DBL", 1.0), 2.5);
  ::setenv("PROTUNER_TEST_DBL", "2.5x", 1);
  EXPECT_DOUBLE_EQ(env_double("PROTUNER_TEST_DBL", 1.0), 1.0);
  ::unsetenv("PROTUNER_TEST_DBL");
}

}  // namespace
}  // namespace protuner::util
