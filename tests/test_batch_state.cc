// Tests for the wave/sample evaluation bookkeeping shared by the
// rank-ordering strategies.
#include <gtest/gtest.h>

#include "core/batch_state.h"

namespace protuner::core {
namespace {

std::vector<Point> pts(std::initializer_list<double> xs) {
  std::vector<Point> out;
  for (double x : xs) out.push_back(Point{x});
  return out;
}

TEST(BatchState, SingleWaveSingleSample) {
  BatchState b;
  b.reset(pts({1.0, 2.0, 3.0}), /*ranks=*/4, {});
  EXPECT_TRUE(b.active());
  const auto a = b.next_assignment();
  ASSERT_EQ(a.size(), 3u);
  b.feed(std::vector<double>{10.0, 20.0, 30.0});
  EXPECT_TRUE(b.done());
  EXPECT_EQ(b.estimates(), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(BatchState, MultipleWavesWhenBatchExceedsRanks) {
  BatchState b;
  b.reset(pts({1.0, 2.0, 3.0, 4.0, 5.0}), /*ranks=*/2, {});
  // Wave 1: points 0,1.
  auto a = b.next_assignment();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], Point{1.0});
  b.feed(std::vector<double>{11.0, 12.0});
  EXPECT_FALSE(b.done());
  // Wave 2: points 2,3.
  a = b.next_assignment();
  EXPECT_EQ(a[0], Point{3.0});
  b.feed(std::vector<double>{13.0, 14.0});
  // Wave 3: point 4 alone.
  a = b.next_assignment();
  ASSERT_EQ(a.size(), 1u);
  b.feed(std::vector<double>{15.0});
  EXPECT_TRUE(b.done());
  EXPECT_EQ(b.estimates(),
            (std::vector<double>{11.0, 12.0, 13.0, 14.0, 15.0}));
}

TEST(BatchState, SequentialSamplesReducedByMin) {
  BatchState::Options o;
  o.samples = 3;
  o.estimator = EstimatorKind::kMin;
  BatchState b;
  b.reset(pts({1.0, 2.0}), /*ranks=*/2, o);
  b.feed(std::vector<double>{5.0, 9.0});
  EXPECT_FALSE(b.done());
  b.feed(std::vector<double>{4.0, 11.0});
  b.feed(std::vector<double>{6.0, 10.0});
  EXPECT_TRUE(b.done());
  EXPECT_EQ(b.estimates(), (std::vector<double>{4.0, 9.0}));
}

TEST(BatchState, MeanEstimator) {
  BatchState::Options o;
  o.samples = 2;
  o.estimator = EstimatorKind::kMean;
  BatchState b;
  b.reset(pts({1.0}), 1, o);
  b.feed(std::vector<double>{4.0});
  b.feed(std::vector<double>{6.0});
  EXPECT_TRUE(b.done());
  EXPECT_DOUBLE_EQ(b.estimates()[0], 5.0);
}

TEST(BatchState, ParallelReplicasCollectSamplesPerStep) {
  // 2 points on 6 ranks with K=3 and replicas on: 3 replicas per point, so
  // a single step suffices.
  BatchState::Options o;
  o.samples = 3;
  o.parallel_replicas = true;
  BatchState b;
  b.reset(pts({1.0, 2.0}), /*ranks=*/6, o);
  const auto a = b.next_assignment();
  ASSERT_EQ(a.size(), 6u);
  // Layout: rep-major (p0, p1, p0, p1, p0, p1).
  EXPECT_EQ(a[0], Point{1.0});
  EXPECT_EQ(a[1], Point{2.0});
  EXPECT_EQ(a[2], Point{1.0});
  b.feed(std::vector<double>{5.0, 9.0, 4.0, 8.0, 6.0, 7.0});
  EXPECT_TRUE(b.done());
  EXPECT_EQ(b.estimates(), (std::vector<double>{4.0, 7.0}));
}

TEST(BatchState, ReplicasCappedAtSampleCount) {
  // 1 point, 8 ranks, K=2: only 2 replicas used, one step.
  BatchState::Options o;
  o.samples = 2;
  o.parallel_replicas = true;
  BatchState b;
  b.reset(pts({1.0}), 8, o);
  const auto a = b.next_assignment();
  EXPECT_EQ(a.size(), 2u);
  b.feed(std::vector<double>{3.0, 1.0});
  EXPECT_TRUE(b.done());
  EXPECT_DOUBLE_EQ(b.estimates()[0], 1.0);
}

TEST(BatchState, ReplicasPlusSequentialSteps) {
  // 2 points, 4 ranks, K=5, replicas on: 2 replicas/point per step,
  // so ceil(5/2)=3 steps; the trim keeps exactly K=5 samples.
  BatchState::Options o;
  o.samples = 5;
  o.estimator = EstimatorKind::kMean;
  o.parallel_replicas = true;
  BatchState b;
  b.reset(pts({1.0, 2.0}), 4, o);
  int steps = 0;
  while (!b.done()) {
    const auto a = b.next_assignment();
    ASSERT_EQ(a.size(), 4u);
    std::vector<double> times(a.size(), 2.0);
    b.feed(times);
    ++steps;
  }
  EXPECT_EQ(steps, 3);
  EXPECT_DOUBLE_EQ(b.estimates()[0], 2.0);
}

TEST(EstimatorReduce, AllKinds) {
  const std::vector<double> xs{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(reduce_samples(EstimatorKind::kMin, xs), 1.0);
  EXPECT_DOUBLE_EQ(reduce_samples(EstimatorKind::kMean, xs), 3.0);
  EXPECT_DOUBLE_EQ(reduce_samples(EstimatorKind::kMedian, xs), 3.0);
  EXPECT_DOUBLE_EQ(reduce_samples(EstimatorKind::kFirst, xs), 5.0);
}

TEST(EstimatorReduce, MedianEvenCount) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(reduce_samples(EstimatorKind::kMedian, xs), 2.5);
}

TEST(EstimatorReduce, SingleSample) {
  const std::vector<double> xs{7.0};
  for (auto kind : {EstimatorKind::kMin, EstimatorKind::kMean,
                    EstimatorKind::kMedian, EstimatorKind::kFirst}) {
    EXPECT_DOUBLE_EQ(reduce_samples(kind, xs), 7.0);
  }
}

TEST(EstimatorName, Distinct) {
  EXPECT_EQ(estimator_name(EstimatorKind::kMin), "min");
  EXPECT_EQ(estimator_name(EstimatorKind::kMean), "mean");
  EXPECT_EQ(estimator_name(EstimatorKind::kMedian), "median");
  EXPECT_EQ(estimator_name(EstimatorKind::kFirst), "first");
}

}  // namespace
}  // namespace protuner::core
