// Tests for noise-model calibration (measure -> fit -> simulate) and the
// post-tuning sensitivity analysis.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/landscape.h"
#include "core/sensitivity.h"
#include "util/rng.h"
#include "varmodel/fit.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/two_job_sim.h"
#include "stats/pareto.h"

namespace protuner {
namespace {

// ---------------------------------------------------------------- noise fit

TEST(NoiseFit, RecoversParametersFromEq17Noise) {
  const double true_rho = 0.25, true_alpha = 1.7, f = 4.0;
  const varmodel::ParetoNoise noise(true_rho, true_alpha);
  util::Rng rng(1);
  std::vector<double> ys(20000);
  for (auto& y : ys) y = noise.observe(f, rng);

  const varmodel::NoiseFit fit = varmodel::fit_noise(ys);
  // Floor = f (1 + beta_rel); beta_rel = 0.7*0.25/(0.75*1.7) ~ 0.137.
  EXPECT_NEAR(fit.clean_time, f * (1.0 + noise.beta(1.0)), 0.05);
  // Raw Eq. 6 rho is biased low under Eq. 17 noise (the floor hides beta);
  // the alpha-corrected estimate recovers the truth.
  EXPECT_LT(fit.rho, true_rho);
  EXPECT_NEAR(fit.rho_eq17, true_rho, 0.07);
  EXPECT_NEAR(fit.alpha, true_alpha, 0.4);
  EXPECT_TRUE(fit.heavy);
}

TEST(NoiseFit, CleanMachineYieldsNearZeroRho) {
  // Tiny jitter only.
  util::Rng rng(2);
  std::vector<double> ys(500);
  for (auto& y : ys) y = 3.0 + 0.001 * rng.uniform();
  const varmodel::NoiseFit fit = varmodel::fit_noise(ys);
  EXPECT_LT(fit.rho, 0.01);
  EXPECT_NEAR(fit.clean_time, 3.0, 0.01);
}

TEST(NoiseFit, QueueNoiseGivesConsistentRho) {
  varmodel::TwoJobConfig cfg;
  cfg.arrival_rate = 0.3;
  cfg.service = std::make_shared<stats::Pareto>(1.7, 0.7 / 1.7);
  const varmodel::TwoJobSimulator sim(cfg);
  util::Rng rng(3);
  std::vector<double> ys(8000);
  for (auto& y : ys) y = sim.run_application(5.0, rng);
  const varmodel::NoiseFit fit = varmodel::fit_noise(ys);
  EXPECT_NEAR(fit.rho, sim.rho(), 0.08);
  EXPECT_NEAR(fit.clean_time, 5.0, 0.15);
}

TEST(NoiseFit, ToParetoNoiseRoundTripsMean) {
  const varmodel::ParetoNoise truth(0.2, 1.8);
  util::Rng rng(4);
  std::vector<double> ys(20000);
  for (auto& y : ys) y = truth.observe(2.0, rng);
  const varmodel::ParetoNoise refit =
      varmodel::to_pareto_noise(varmodel::fit_noise(ys));
  // The refit model's Eq. 7 mean should be close to the truth's.
  EXPECT_NEAR(refit.expected(2.0), truth.expected(2.0),
              0.35 * truth.expected(2.0));
}

TEST(NoiseFit, UnresolvedTailFallsBackToPaperAlpha) {
  // Light noise with too few excess samples for a tail estimate.
  util::Rng rng(5);
  std::vector<double> ys(30);
  for (auto& y : ys) y = 1.0 + 0.01 * rng.uniform();
  const varmodel::NoiseFit fit = varmodel::fit_noise(ys);
  const varmodel::ParetoNoise model = varmodel::to_pareto_noise(fit);
  EXPECT_DOUBLE_EQ(model.alpha(), 1.7);
}

// ------------------------------------------------------------- sensitivity

core::ParameterSpace aniso_space() {
  return core::ParameterSpace({
      core::Parameter::integer("steep", 0, 20),
      core::Parameter::integer("flat", 0, 20),
  });
}

TEST(Sensitivity, RanksSteepAxisFirst) {
  const auto space = aniso_space();
  const core::FunctionLandscape land("aniso", [](const core::Point& x) {
    return 1.0 + 0.5 * (x[0] - 10.0) * (x[0] - 10.0) +
           0.001 * (x[1] - 10.0) * (x[1] - 10.0);
  });
  const auto report = core::analyze_sensitivity(
      space, land, core::Point{10.0, 10.0});
  ASSERT_EQ(report.axes.size(), 2u);
  EXPECT_EQ(report.axes[0].name, "steep");
  EXPECT_GT(report.axes[0].rel_range, report.axes[1].rel_range);
  EXPECT_TRUE(report.axes[0].anchor_is_axis_optimum);
  EXPECT_TRUE(report.axes[1].anchor_is_axis_optimum);
}

TEST(Sensitivity, DetectsNonOptimalAnchor) {
  const auto space = aniso_space();
  const core::FunctionLandscape land("slope", [](const core::Point& x) {
    return 30.0 - x[0] + 0.0 * x[1] + 1.0;
  });
  const auto report =
      core::analyze_sensitivity(space, land, core::Point{10.0, 10.0});
  // The anchor is not the axis optimum along "steep" (larger is better).
  bool steep_flagged = false;
  for (const auto& axis : report.axes) {
    if (axis.name == "steep") steep_flagged = !axis.anchor_is_axis_optimum;
  }
  EXPECT_TRUE(steep_flagged);
}

TEST(Sensitivity, RespectsBoundaries) {
  const auto space = aniso_space();
  const core::FunctionLandscape land("bowl", [](const core::Point& x) {
    return 1.0 + x[0] + x[1];
  });
  // Anchor at the lower corner: sweeps must stay admissible.
  const auto report =
      core::analyze_sensitivity(space, land, core::Point{0.0, 0.0});
  for (const auto& axis : report.axes) {
    for (double v : axis.values) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 20.0);
    }
  }
}

TEST(Sensitivity, ContinuousAxisSweepsWithinRadius) {
  const core::ParameterSpace space(
      {core::Parameter::continuous("c", 0.0, 10.0)});
  const core::FunctionLandscape land(
      "lin", [](const core::Point& x) { return 1.0 + x[0]; });
  core::SensitivityOptions opt;
  opt.radius_fraction = 0.1;  // radius 1.0
  const auto report =
      core::analyze_sensitivity(space, land, core::Point{5.0}, opt);
  for (double v : report.axes[0].values) {
    EXPECT_GE(v, 4.0 - 1e-9);
    EXPECT_LE(v, 6.0 + 1e-9);
  }
}

TEST(Sensitivity, StepsPerSideControlsSweepSize) {
  const auto space = aniso_space();
  const core::FunctionLandscape land(
      "flat", [](const core::Point&) { return 1.0; });
  core::SensitivityOptions opt;
  opt.steps_per_side = 2;
  const auto report = core::analyze_sensitivity(
      space, land, core::Point{10.0, 10.0}, opt);
  EXPECT_EQ(report.axes[0].values.size(), 5u);  // 2 below + anchor + 2 above
}

}  // namespace
}  // namespace protuner
