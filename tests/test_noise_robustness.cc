// Property sweep: PRO with the min-of-K estimator must behave sanely under
// EVERY noise model in the library — the §5 resilience claim as a
// parameterized test.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cluster/simulated_cluster.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/session.h"
#include "stats/pareto.h"
#include "varmodel/ar1_noise.h"
#include "varmodel/burst_noise.h"
#include "varmodel/composite_noise.h"
#include "varmodel/noise_model.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/simple_noise.h"
#include "varmodel/two_job_sim.h"

namespace protuner {
namespace {

struct NoiseCase {
  const char* label;
  std::shared_ptr<const varmodel::NoiseModel> noise;
};

std::vector<NoiseCase> all_noises() {
  varmodel::TwoJobConfig q;
  q.arrival_rate = 0.25;
  q.service = std::make_shared<stats::Pareto>(1.7, 0.7 / 1.7);

  varmodel::BurstConfig b;
  b.rho = 0.25;

  varmodel::Ar1Config a1;
  a1.rho = 0.25;

  return {
      {"ar1", std::make_shared<varmodel::Ar1Noise>(a1)},
      {"none", std::make_shared<varmodel::NoNoise>()},
      {"pareto17", std::make_shared<varmodel::ParetoNoise>(0.25, 1.7)},
      {"pareto12", std::make_shared<varmodel::ParetoNoise>(0.25, 1.2)},
      {"exponential", std::make_shared<varmodel::ExponentialNoise>(0.25)},
      {"gaussian", std::make_shared<varmodel::GaussianNoise>(0.25, 0.5)},
      {"queue", std::make_shared<varmodel::QueueNoise>(q)},
      {"burst", std::make_shared<varmodel::BurstNoise>(b)},
      {"composite",
       std::make_shared<varmodel::CompositeNoise>(
           std::make_shared<varmodel::GaussianNoise>(0.05, 0.3),
           std::make_shared<varmodel::ParetoNoise>(0.15, 1.7))},
  };
}

class NoiseRobustness : public ::testing::TestWithParam<NoiseCase> {};

core::ParameterSpace int_box() {
  return core::ParameterSpace({core::Parameter::integer("a", 0, 20),
                               core::Parameter::integer("b", 0, 20)});
}

TEST_P(NoiseRobustness, ProK3FindsGoodConfiguration) {
  const auto space = int_box();
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{5.0, 15.0}, 1.0, 0.3);
  const double center_time = land->clean_time(space.center());

  // Averaged over a few repetitions: the tuned configuration must beat the
  // default under every noise model.
  double acc = 0.0;
  constexpr int kReps = 8;
  for (int rep = 0; rep < kReps; ++rep) {
    cluster::SimulatedCluster machine(
        land, GetParam().noise,
        {.ranks = 8, .seed = static_cast<std::uint64_t>(300 + rep)});
    core::ProOptions opts;
    opts.samples = 3;
    core::ProStrategy pro(space, opts);
    acc += core::run_session(pro, machine,
                             {.steps = 250, .record_series = false})
               .best_clean;
  }
  EXPECT_LT(acc / kReps, center_time) << GetParam().label;
}

TEST_P(NoiseRobustness, ObservationsRespectTheModelFloor) {
  const auto& noise = *GetParam().noise;
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double y = noise.observe(3.0, rng);
    EXPECT_GE(y, 3.0 + noise.n_min(3.0) - 1e-12) << GetParam().label;
  }
}

TEST_P(NoiseRobustness, NttNormalisationStaysFinite) {
  const auto space = int_box();
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{10.0, 10.0}, 1.0, 0.2);
  cluster::SimulatedCluster machine(land, GetParam().noise,
                                    {.ranks = 6, .seed = 5});
  core::ProStrategy pro(space, {});
  const auto r =
      core::run_session(pro, machine, {.steps = 60, .record_series = false});
  EXPECT_TRUE(std::isfinite(r.total_time)) << GetParam().label;
  EXPECT_TRUE(std::isfinite(r.ntt)) << GetParam().label;
  EXPECT_GT(r.ntt, 0.0) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllNoiseModels, NoiseRobustness, ::testing::ValuesIn(all_noises()),
    [](const ::testing::TestParamInfo<NoiseCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace protuner
