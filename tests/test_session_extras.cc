// Tests for session observers, the trace-driven cluster, composite noise
// and bootstrap confidence intervals.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "cluster/simulated_cluster.h"
#include "cluster/trace_cluster.h"
#include "core/fixed.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/session.h"
#include "core/session_log.h"
#include "gs2/trace.h"
#include "stats/bootstrap.h"
#include "stats/pareto.h"
#include "varmodel/composite_noise.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/simple_noise.h"

namespace protuner {
namespace {

core::LandscapePtr flat(double v) {
  return std::make_shared<core::FunctionLandscape>(
      "flat", [v](const core::Point&) { return v; });
}

// ---------------------------------------------------------------- observers

TEST(SessionObserver, OnStepSeesEveryStep) {
  class Counter final : public core::SessionObserver {
   public:
    void on_step(std::size_t, std::span<const core::Point> configs,
                 std::span<const double> times, double cost) override {
      ++steps;
      EXPECT_EQ(configs.size(), times.size());
      EXPECT_GT(cost, 0.0);
    }
    int steps = 0;
  } counter;

  auto land = flat(2.0);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 3, .seed = 1});
  core::FixedStrategy fx(core::Point{0.0});
  core::SessionOptions so;
  so.steps = 25;
  so.observer = &counter;
  (void)core::run_session(fx, machine, so);
  EXPECT_EQ(counter.steps, 25);
}

TEST(SessionObserver, OnConvergedFiresOnce) {
  class Watcher final : public core::SessionObserver {
   public:
    void on_converged(std::size_t step, const core::Point&) override {
      ++fires;
      at = step;
    }
    int fires = 0;
    std::size_t at = 0;
  } watcher;

  const core::ParameterSpace space(
      {core::Parameter::integer("a", 0, 10)});
  auto land = std::make_shared<core::QuadraticLandscape>(core::Point{4.0},
                                                         1.0, 0.5);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 4, .seed = 2});
  core::ProStrategy pro(space, {});
  core::SessionOptions so;
  so.steps = 200;
  so.observer = &watcher;
  const auto r = core::run_session(pro, machine, so);
  ASSERT_TRUE(r.convergence_step.has_value());
  EXPECT_EQ(watcher.fires, 1);
  EXPECT_EQ(watcher.at, *r.convergence_step);
}

TEST(CsvSessionLogger, ProducesHeaderAndRows) {
  std::ostringstream out;
  core::CsvSessionLogger logger(out);
  auto land = flat(1.5);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 2, .seed = 3});
  core::FixedStrategy fx(core::Point{0.0});
  core::SessionOptions so;
  so.steps = 5;
  so.observer = &logger;
  (void)core::run_session(fx, machine, so);
  const std::string text = out.str();
  EXPECT_NE(text.find("step,cost,cumulative,distinct_configs"),
            std::string::npos);
  // Header + 5 rows = 6 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
  EXPECT_NEAR(logger.cumulative(), 7.5, 1e-9);
}

TEST(ConfigChangeTracker, RecordsChangesOnly) {
  core::ConfigChangeTracker tracker;
  auto land = flat(1.0);
  cluster::SimulatedCluster machine(land,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 2, .seed = 4});
  core::FixedStrategy fx(core::Point{7.0});
  core::SessionOptions so;
  so.steps = 20;
  so.observer = &tracker;
  (void)core::run_session(fx, machine, so);
  ASSERT_EQ(tracker.history().size(), 1u);  // fixed config never changes
  EXPECT_EQ(tracker.history()[0].second, (core::Point{7.0}));
}

// -------------------------------------------------------------- TraceCluster

TEST(TraceCluster, TimesAtLeastCleanMinusJitterFloor) {
  auto land = flat(3.0);
  cluster::TraceClusterConfig cfg;
  cfg.ranks = 4;
  cluster::TraceCluster machine(land, cfg);
  for (int s = 0; s < 50; ++s) {
    const auto t = machine.run_step(
        std::vector<core::Point>(4, core::Point{0.0}));
    for (double x : t) EXPECT_GE(x, 3.0);
  }
  EXPECT_EQ(machine.steps_run(), 50u);
}

TEST(TraceCluster, SharedShocksHitAllRanksTogether) {
  auto land = flat(1.0);
  cluster::TraceClusterConfig cfg;
  cfg.ranks = 4;
  cfg.shocks.big_prob = 0.2;
  cfg.shocks.small_prob = 0.0;
  cfg.shocks.jitter_cv = 0.0;
  cluster::TraceCluster machine(land, cfg);
  int together = 0, spiky_steps = 0;
  for (int s = 0; s < 2000; ++s) {
    const auto t = machine.run_step(
        std::vector<core::Point>(4, core::Point{0.0}));
    int spiked = 0;
    for (double x : t) spiked += (x > 2.0);
    if (spiked > 0) {
      ++spiky_steps;
      together += (spiked == 4);
    }
  }
  ASSERT_GT(spiky_steps, 100);
  EXPECT_GT(static_cast<double>(together) / spiky_steps, 0.9);
}

TEST(TraceCluster, ProStillTunesUnderCorrelatedNoise) {
  const core::ParameterSpace space({
      core::Parameter::integer("a", 0, 20),
      core::Parameter::integer("b", 0, 20),
  });
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{15.0, 5.0}, 1.0, 0.3);
  cluster::TraceClusterConfig cfg;
  cfg.ranks = 8;
  cluster::TraceCluster machine(land, cfg);
  core::ProStrategy pro(space, {});
  const auto r = core::run_session(pro, machine, {.steps = 300});
  EXPECT_LT(r.best_clean, land->clean_time(space.center()));
}

// ------------------------------------------------------------ CompositeNoise

TEST(CompositeNoise, SumsComponents) {
  auto a = std::make_shared<varmodel::ParetoNoise>(0.1, 1.7);
  auto b = std::make_shared<varmodel::ExponentialNoise>(0.1);
  const varmodel::CompositeNoise c(a, b);
  EXPECT_NEAR(c.expected(6.0), a->expected(6.0) + b->expected(6.0), 1e-12);
  EXPECT_NEAR(c.n_min(6.0), a->n_min(6.0), 1e-12);  // b's floor is 0
  EXPECT_TRUE(c.heavy_tailed());

  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(c.sample(6.0, rng), c.n_min(6.0) - 1e-12);
  }
}

TEST(CompositeNoise, RhoConsistentWithEq7) {
  auto a = std::make_shared<varmodel::ExponentialNoise>(0.2);
  auto b = std::make_shared<varmodel::ExponentialNoise>(0.1);
  const varmodel::CompositeNoise c(a, b);
  // E[n] at f=1: 0.25 + 0.111 = 0.361; rho = 0.361/1.361.
  EXPECT_NEAR(c.rho(), 0.361 / 1.361, 2e-3);
}

// ----------------------------------------------------------------- bootstrap

TEST(Bootstrap, MeanCiCoversTruthForNormalData) {
  util::Rng data_rng(6);
  std::vector<double> xs(500);
  for (auto& x : xs) x = data_rng.normal(10.0, 2.0);
  util::Rng boot_rng(7);
  const auto ci = stats::bootstrap_mean_ci(xs, 0.95, 500, boot_rng);
  EXPECT_GT(ci.hi, ci.lo);
  EXPECT_LE(ci.lo, 10.3);
  EXPECT_GE(ci.hi, 9.7);
  EXPECT_NEAR(ci.point, 10.0, 0.3);
}

TEST(Bootstrap, MedianCiNarrowerThanRangeUnderHeavyTails) {
  const stats::Pareto p(1.2, 1.0);
  util::Rng data_rng(8);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = p.sample(data_rng);
  util::Rng boot_rng(9);
  const auto ci = stats::bootstrap_median_ci(xs, 0.95, 400, boot_rng);
  // Median of Pareto(1.2,1) = 2^{1/1.2} ~ 1.78.
  EXPECT_NEAR(ci.point, 1.78, 0.2);
  EXPECT_LT(ci.hi - ci.lo, 0.5);
}

TEST(Bootstrap, DeterministicGivenRngState) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  util::Rng r1(10), r2(10);
  const auto a = stats::bootstrap_mean_ci(xs, 0.9, 200, r1);
  const auto b = stats::bootstrap_mean_ci(xs, 0.9, 200, r2);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace protuner
