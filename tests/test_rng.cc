// Unit tests for the deterministic RNG layer.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <type_traits>
#include <vector>

namespace protuner::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanCloseToHalf) {
  Rng rng(99);
  double s = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) s += rng.uniform();
  EXPECT_NEAR(s / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 9);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(2024);
  constexpr int kN = 200000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / kN, 0.0, 0.02);
  EXPECT_NEAR(s2 / kN, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(3);
  constexpr int kN = 100000;
  double s = 0.0;
  for (int i = 0; i < kN; ++i) s += rng.normal(10.0, 2.0);
  EXPECT_NEAR(s / kN, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsOne) {
  Rng rng(17);
  constexpr int kN = 200000;
  double s = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential();
    EXPECT_GE(x, 0.0);
    s += x;
  }
  EXPECT_NEAR(s / kN, 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, JumpProducesDisjointStream) {
  Rng a(42);
  Rng b(42);
  b.jump();
  // The jumped stream should not collide with the original's early output.
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(first.count(b()));
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng base(42);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  Rng s0_again = base.split(0);
  EXPECT_EQ(s0(), s0_again());
  EXPECT_NE(s0(), s1());  // consecutive outputs of distinct splits differ
  // base untouched by split.
  Rng fresh(42);
  EXPECT_EQ(base(), fresh());
  // Different splits disagree.
  Rng s0b = base.split(0);
  Rng s1b = base.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (s0b() == s1b());
  EXPECT_LT(same, 3);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0);
  SplitMix64 b(1);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, FillUniformMatchesRepeatedUniform) {
  // The block generator must be stream-equivalent to calling uniform() in
  // a loop: bit-identical values and the same generator end state.
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    Rng scalar(987), block(987);
    std::vector<double> expect(n), got(n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = scalar.uniform();
    block.fill_uniform({got.data(), got.size()});
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(expect[i], got[i]) << i;
    EXPECT_TRUE(scalar == block) << "end state diverged at n=" << n;
    // And the streams keep agreeing afterwards.
    EXPECT_EQ(scalar(), block());
  }
}

TEST(Rng, FillUniformValuesInUnitInterval) {
  Rng rng(11);
  std::vector<double> v(4096);
  rng.fill_uniform({v.data(), v.size()});
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, SplitStreamsMatchesSplit) {
  // split_streams(count)[i] must be the same stream as split(i), just
  // computed with one jump per stream instead of i+1.
  const Rng base(2024);
  const std::vector<Rng> streams = base.split_streams(9);
  ASSERT_EQ(streams.size(), 9u);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    EXPECT_TRUE(streams[i] == base.split(i)) << "stream " << i;
  }
  // base untouched.
  Rng fresh(2024);
  Rng base_copy = base;
  EXPECT_EQ(base_copy(), fresh());
}

// split() indices are 64-bit end to end: a wide caller index must reach the
// jump loop unnarrowed.  (Running split(2^32) is infeasible — it is O(n)
// jumps — so pin the signature instead.)
static_assert(std::is_same_v<decltype(&Rng::split),
                             Rng (Rng::*)(std::uint64_t) const>,
              "Rng::split must take a 64-bit stream index");

}  // namespace
}  // namespace protuner::util
