// Tests for the histogram / ecdf diagnostics behind Figures 4-7.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "stats/pareto.h"
#include "util/rng.h"

namespace protuner::stats {
namespace {

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);  // bins [0,2) [2,4) [4,6) [6,8) [8,10)
  h.add(1.0);
  h.add(2.0);
  h.add(3.9);
  h.add(9.99);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 0.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, TracksOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.5);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, DensityIntegratesToOne) {
  util::Rng rng(5);
  Histogram h(0.0, 1.0, 20);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform());
  double integral = 0.0;
  for (double d : h.density()) integral += d * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, FrequencySumsToCoveredFraction) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.9);
  h.add(2.0);  // overflow
  double sum = 0.0;
  for (double f : h.frequency()) sum += f;
  EXPECT_NEAR(sum, 2.0 / 3.0, 1e-12);
}

TEST(Histogram, FitCoversDataRange) {
  const std::vector<double> xs{3.0, 7.0, 5.0, 9.0, 1.0};
  const Histogram h = Histogram::fit(xs, 4);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total(), xs.size());
}

TEST(Histogram, FitSingleValueData) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const Histogram h = Histogram::fit(xs, 3);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, EdgesAndCentersConsistent) {
  Histogram h(0.0, 3.0, 3);
  const auto e = h.edges();
  const auto c = h.centers();
  ASSERT_EQ(e.size(), 4u);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(e[0], 0.0);
  EXPECT_DOUBLE_EQ(e[3], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 1.5);
}

TEST(Ecdf, StepFunctionValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Ecdf e(xs);
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.ccdf(2.5), 0.5);
}

TEST(Ecdf, QuantileMatchesSortedData) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  const Ecdf e(xs);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
}

TEST(Ecdf, TailPointsDropZeroSurvival) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto tp = Ecdf(xs).tail_points();
  ASSERT_EQ(tp.x.size(), 2u);  // max dropped (Q=0)
  EXPECT_DOUBLE_EQ(tp.x[0], 1.0);
  EXPECT_NEAR(tp.q[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(tp.q[1], 1.0 / 3.0, 1e-12);
}

TEST(Ecdf, TailPointsMergeDuplicates) {
  const std::vector<double> xs{1.0, 1.0, 2.0, 3.0};
  const auto tp = Ecdf(xs).tail_points();
  // x=1 appears once with Q = P[X > 1] = 0.5.
  ASSERT_GE(tp.x.size(), 1u);
  EXPECT_DOUBLE_EQ(tp.x[0], 1.0);
  EXPECT_DOUBLE_EQ(tp.q[0], 0.5);
}

TEST(Ecdf, LogLogTailIsLinearForPareto) {
  // The core Fig. 5 diagnostic: Pareto data yields a straight log-log tail
  // with slope -alpha.
  const Pareto p(1.7, 1.0);
  util::Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = p.sample(rng);
  const auto tail = Ecdf(xs).log_log_tail();
  // Fit a line over the central segment (avoid the noisy extreme tail).
  const std::size_t n = tail.x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t cnt = 0;
  for (std::size_t i = n / 4; i < 3 * n / 4; ++i) {
    sx += tail.x[i];
    sy += tail.q[i];
    sxx += tail.x[i] * tail.x[i];
    sxy += tail.x[i] * tail.q[i];
    ++cnt;
  }
  const double m = (static_cast<double>(cnt) * sxy - sx * sy) /
                   (static_cast<double>(cnt) * sxx - sx * sx);
  EXPECT_NEAR(m, -1.7, 0.15);
}

TEST(TruncateAbove, RemovesLargeSamples) {
  const std::vector<double> xs{1.0, 6.0, 2.0, 5.0, 10.0};
  const auto t = truncate_above(xs, 5.0);
  ASSERT_EQ(t.size(), 3u);
  for (double v : t) EXPECT_LE(v, 5.0);
}

TEST(TruncateAbove, KeepsAllWhenCutAboveMax) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(truncate_above(xs, 10.0).size(), 2u);
}

}  // namespace
}  // namespace protuner::stats
