// Tests for the extension features: bursty noise, grid search, adaptive-K
// PRO (the paper's stated future work) and the harmony SessionBuilder
// facade.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/simulated_cluster.h"
#include "core/grid_search.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/session.h"
#include "harmony/api.h"
#include "spec/spec.h"
#include "stats/autocorr.h"
#include "util/summary.h"
#include "varmodel/burst_noise.h"
#include "varmodel/pareto_noise.h"

namespace protuner {
namespace {

// ---------------------------------------------------------------- BurstNoise

TEST(BurstNoise, LongRunMeanMatchesEq7Target) {
  varmodel::BurstConfig cfg;
  cfg.rho = 0.2;
  cfg.alpha = 2.5;  // finite variance for a tight mean test
  const varmodel::BurstNoise noise(cfg);
  util::Rng rng(1);
  double s = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) s += noise.sample(4.0, rng);
  EXPECT_NEAR(s / kN, noise.expected(4.0), noise.expected(4.0) * 0.05);
}

TEST(BurstNoise, DutyCycleFormula) {
  varmodel::BurstConfig cfg;
  cfg.p_enter = 0.05;
  cfg.p_exit = 0.25;
  const varmodel::BurstNoise noise(cfg);
  EXPECT_NEAR(noise.duty_cycle(), 0.05 / 0.30, 1e-12);
}

TEST(BurstNoise, ProducesEpisodes) {
  // Consecutive samples are positively correlated: disturbances cluster.
  varmodel::BurstConfig cfg;
  cfg.rho = 0.3;
  cfg.p_enter = 0.02;
  cfg.p_exit = 0.10;
  const varmodel::BurstNoise noise(cfg);
  util::Rng rng(2);
  std::vector<double> indicator(50000);
  for (auto& v : indicator) v = noise.sample(1.0, rng) > 0.0 ? 1.0 : 0.0;
  EXPECT_GT(stats::autocorrelation(indicator, 1), 0.5);
}

TEST(BurstNoise, QuietStateIsExactlyZero) {
  varmodel::BurstConfig cfg;
  cfg.rho = 0.3;
  const varmodel::BurstNoise noise(cfg);
  util::Rng rng(3);
  int zeros = 0;
  for (int i = 0; i < 1000; ++i) zeros += noise.sample(1.0, rng) == 0.0;
  EXPECT_GT(zeros, 500);  // mostly quiet with these defaults
}

// ---------------------------------------------------------------- GridSearch

TEST(GridSearch, SweepSizeIsProductOfAxes) {
  const core::ParameterSpace space({
      core::Parameter::integer("a", 0, 4),          // 5 values
      core::Parameter::discrete("b", {1.0, 2.0}),   // 2 values
  });
  core::GridSearchStrategy gs(space);
  EXPECT_EQ(gs.sweep_size(), 10u);
}

TEST(GridSearch, FindsExactOptimum) {
  const core::ParameterSpace space({
      core::Parameter::integer("a", 0, 9),
      core::Parameter::integer("b", 0, 9),
  });
  auto land =
      std::make_shared<core::QuadraticLandscape>(core::Point{3.0, 8.0}, 1.0,
                                                 0.7);
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 4, .seed = 1});
  core::GridSearchStrategy gs(space);
  const core::SessionResult res =
      core::run_session(gs, machine, {.steps = 40});
  EXPECT_TRUE(gs.converged());
  EXPECT_EQ(res.best, (core::Point{3.0, 8.0}));
}

TEST(GridSearch, ContinuousAxesSampledAtLevels) {
  const core::ParameterSpace space(
      {core::Parameter::continuous("x", 0.0, 1.0)});
  core::GridSearchStrategy gs(space, {.continuous_levels = 5});
  EXPECT_EQ(gs.sweep_size(), 5u);
}

TEST(GridSearch, PinsBestAfterSweep) {
  const core::ParameterSpace space({core::Parameter::integer("a", 0, 3)});
  auto land = std::make_shared<core::QuadraticLandscape>(core::Point{2.0},
                                                         1.0, 1.0);
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 2, .seed = 2});
  core::GridSearchStrategy gs(space);
  (void)core::run_session(gs, machine, {.steps = 10});
  ASSERT_TRUE(gs.converged());
  const core::StepProposal p = gs.propose();
  ASSERT_EQ(p.configs.size(), 2u);
  for (const auto& c : p.configs) EXPECT_EQ(c, (core::Point{2.0}));
}

// ----------------------------------------------------------------- AdaptiveK

TEST(AdaptiveK, StaysAtOneWithoutNoise) {
  const core::ParameterSpace space({
      core::Parameter::integer("a", 0, 20),
      core::Parameter::integer("b", 0, 20),
  });
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{5.0, 5.0}, 1.0, 0.2);
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 8, .seed = 3});
  core::ProOptions opts;
  opts.adaptive_samples = true;
  core::ProStrategy pro(space, opts);
  (void)core::run_session(pro, machine, {.steps = 150});
  EXPECT_EQ(pro.current_samples(), 1);
}

TEST(AdaptiveK, GrowsUnderHeavyNoise) {
  const core::ParameterSpace space({
      core::Parameter::integer("a", 0, 20),
      core::Parameter::integer("b", 0, 20),
  });
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{5.0, 5.0}, 1.0, 0.2);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.35, 1.7);
  // K should rise above 1 in at least a majority of repetitions.
  int grew = 0;
  for (int rep = 0; rep < 10; ++rep) {
    cluster::SimulatedCluster machine(
        land, noise,
        {.ranks = 8, .seed = static_cast<std::uint64_t>(40 + rep)});
    core::ProOptions opts;
    opts.adaptive_samples = true;
    opts.stop_at_convergence = false;  // keep sampling the incumbent
    core::ProStrategy pro(space, opts);
    (void)core::run_session(pro, machine, {.steps = 200});
    grew += pro.current_samples() > 1;
  }
  EXPECT_GE(grew, 6);
}

TEST(AdaptiveK, RespectsMaxSamples) {
  const core::ParameterSpace space({
      core::Parameter::integer("a", 0, 20),
      core::Parameter::integer("b", 0, 20),
  });
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{5.0, 5.0}, 1.0, 0.2);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.4, 1.7);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 8, .seed = 5});
  core::ProOptions opts;
  opts.adaptive_samples = true;
  opts.max_samples = 3;
  opts.stop_at_convergence = false;
  core::ProStrategy pro(space, opts);
  (void)core::run_session(pro, machine, {.steps = 300});
  EXPECT_LE(pro.current_samples(), 3);
  EXPECT_GE(pro.current_samples(), 1);
}

// ------------------------------------------------------------ SessionBuilder

TEST(SessionBuilder, BuildsWorkingProServer) {
  harmony::SessionBuilder builder;
  builder.add_int("a", 0, 20)
      .add_int("b", 0, 20)
      .algorithm(harmony::Algorithm::kPro)
      .samples(2)
      .clients(4);
  EXPECT_EQ(builder.parameter_count(), 2u);
  auto server = builder.build();

  const core::QuadraticLandscape land(core::Point{7.0, 3.0}, 1.0, 0.2);
  for (int step = 0; step < 200; ++step) {
    std::vector<core::Point> cfgs;
    for (std::size_t r = 0; r < 4; ++r) cfgs.push_back(server->fetch(r));
    for (std::size_t r = 0; r < 4; ++r) {
      server->report(r, land.clean_time(cfgs[r]));
    }
  }
  EXPECT_EQ(server->best_point(), (core::Point{7.0, 3.0}));
}

TEST(SessionBuilder, SupportsAllAlgorithms) {
  for (auto algo : {harmony::Algorithm::kPro, harmony::Algorithm::kSro,
                    harmony::Algorithm::kNelderMead}) {
    harmony::SessionBuilder builder;
    builder.add_int("a", 0, 10).algorithm(algo).clients(2);
    auto server = builder.build();
    // One full round must complete without deadlock.
    std::vector<core::Point> cfgs;
    for (std::size_t r = 0; r < 2; ++r) cfgs.push_back(server->fetch(r));
    for (std::size_t r = 0; r < 2; ++r) server->report(r, 1.0);
    EXPECT_EQ(server->rounds_completed(), 1u);
  }
}

TEST(SessionBuilder, StrategySpecOverridesEnumAlgorithm) {
  // A declarative spec (DESIGN.md §13) takes precedence over the enum
  // setters; any registered strategy is reachable without a new enum value.
  for (const char* text : {"pro:k=2", "spsa:a=0.3", "rs:m=8,n0=2"}) {
    harmony::SessionBuilder builder;
    builder.add_int("a", 0, 20)
        .algorithm(harmony::Algorithm::kNelderMead)  // overridden below
        .strategy_spec(text)
        .noise_spec("pareto:rho=0.2,alpha=1.7")
        .clients(3);
    EXPECT_EQ(builder.strategy_spec(), text);
    EXPECT_EQ(builder.noise_spec(), "pareto:rho=0.2,alpha=1.7");
    auto server = builder.build();
    std::vector<core::Point> cfgs;
    for (std::size_t r = 0; r < 3; ++r) cfgs.push_back(server->fetch(r));
    for (std::size_t r = 0; r < 3; ++r) server->report(r, 1.0);
    EXPECT_EQ(server->rounds_completed(), 1u);
  }
  // Malformed specs fail loudly at build() with the spec diagnostics.
  harmony::SessionBuilder bad;
  bad.add_int("a", 0, 5).strategy_spec("pro:kk=2").clients(1);
  EXPECT_THROW((void)bad.build(), spec::SpecError);
}

TEST(SessionBuilder, MixedParameterKinds) {
  harmony::SessionBuilder builder;
  builder.add_int("i", 1, 9)
      .add_continuous("c", 0.0, 1.0)
      .add_discrete("d", {2.0, 4.0, 8.0})
      .clients(3);
  const auto space = builder.space();
  EXPECT_EQ(space.size(), 3u);
  EXPECT_EQ(space.param(0).kind(), core::ParamKind::kInteger);
  EXPECT_EQ(space.param(1).kind(), core::ParamKind::kContinuous);
  EXPECT_EQ(space.param(2).kind(), core::ParamKind::kDiscrete);
  auto server = builder.build();
  const core::Point cfg = server->fetch(0);
  EXPECT_TRUE(space.admissible(cfg));
}

TEST(SessionBuilder, AdaptiveSamplingServerRuns) {
  harmony::SessionBuilder builder;
  builder.add_int("a", 0, 20).adaptive_samples(4).clients(4);
  auto server = builder.build();
  const core::QuadraticLandscape land(core::Point{9.0}, 1.0, 0.5);
  util::Rng rng(9);
  const varmodel::ParetoNoise noise(0.3, 1.7);
  for (int step = 0; step < 150; ++step) {
    std::vector<core::Point> cfgs;
    for (std::size_t r = 0; r < 4; ++r) cfgs.push_back(server->fetch(r));
    for (std::size_t r = 0; r < 4; ++r) {
      server->report(r, noise.observe(land.clean_time(cfgs[r]), rng));
    }
  }
  EXPECT_EQ(server->rounds_completed(), 150u);
}

}  // namespace
}  // namespace protuner
