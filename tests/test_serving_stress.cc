// Serving-tier concurrency stress: the SessionManager registry, the obs
// exporters and the Server fast path all running against each other the
// way a production tuning service does.  These tests are the tier1-tsan
// regression net for DESIGN.md §12:
//
//   * registry churn (create/attach/detach/remove) must never stall or
//     corrupt unrelated sessions' fetch/report traffic;
//   * a slow exporter sweeping stats_all()/metrics_snapshot() must not
//     hold the registry against churn (the pre-PR-7 bug aggregated while
//     holding the registry mutex);
//   * Server::tick() deadline enforcement must not block in-flight
//     fetches (asserted through the loadgen at two tick frequencies).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/harmony_loadgen.h"
#include "core/fixed.h"
#include "harmony/server.h"
#include "harmony/session_manager.h"
#include "obs/metrics.h"

namespace protuner {
namespace {

using core::FixedStrategy;
using core::Point;

harmony::ServerOptions quiet_options(obs::Registry& registry,
                                     const std::string& session) {
  harmony::ServerOptions so;
  so.metrics = &registry;
  so.record_series = false;
  so.session = session;
  return so;
}

TEST(ServingStress, RegistryChurnWhileRanksFetchAndReport) {
  // Two persistent sessions run real round traffic while churn threads
  // create/attach/detach/remove ephemeral sessions and an exporter sweeps
  // aggregate views.  Everything must run to completion with the traffic
  // sessions' accounting intact — under TSan this is also the data-race
  // proof for the sharded registry + lock-free collecting phase.
  constexpr std::size_t kRanks = 4;
  constexpr std::size_t kRounds = 150;
  constexpr int kChurnThreads = 2;
  constexpr int kChurnCycles = 120;

  obs::Registry registry;
  harmony::SessionManager manager;
  for (int s = 0; s < 2; ++s) {
    manager.create("traffic-" + std::to_string(s),
                   std::make_unique<FixedStrategy>(Point{1.0, 2.0}), kRanks,
                   quiet_options(registry, "traffic-" + std::to_string(s)));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> churn_completed{0};
  std::vector<std::jthread> threads;

  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&manager, s] {
      const std::shared_ptr<harmony::Server> server =
          manager.attach("traffic-" + std::to_string(s));
      Point scratch;
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t r = 0; r < kRanks; ++r) {
          server->fetch_into(r, scratch);
          server->report(r, 1.0 + static_cast<double>(r));
        }
      }
      manager.detach("traffic-" + std::to_string(s));
    });
  }
  for (int c = 0; c < kChurnThreads; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < kChurnCycles; ++i) {
        const std::string name =
            "churn-" + std::to_string(c) + "-" + std::to_string(i % 7);
        auto server = manager.create(
            name, std::make_unique<FixedStrategy>(Point{3.0}), 2,
            quiet_options(registry, name));
        auto again = manager.attach(name);
        Point scratch;
        again->fetch_into(0, scratch);
        again->report(0, 0.5);
        EXPECT_THROW(manager.remove(name), harmony::SessionError)
            << "remove must refuse while attached";
        manager.detach(name);
        EXPECT_TRUE(manager.remove(name));
        churn_completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  threads.emplace_back([&] {  // exporter antagonist
    while (!stop.load(std::memory_order_relaxed)) {
      const auto stats = manager.stats_all();
      for (const auto& st : stats) {
        EXPECT_FALSE(st.name.empty());
        EXPECT_GE(st.clients, 2u);
      }
      const obs::RegistrySnapshot snap = manager.metrics_snapshot();
      EXPECT_GE(snap.instruments.size(), stats.size());
    }
  });

  for (std::size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  threads.clear();

  EXPECT_EQ(churn_completed.load(), kChurnThreads * kChurnCycles);
  for (int s = 0; s < 2; ++s) {
    const auto st = manager.stats("traffic-" + std::to_string(s));
    EXPECT_EQ(st.rounds, kRounds);
    EXPECT_EQ(st.attached, 0u);
    EXPECT_EQ(st.active_ranks, kRanks);
  }
}

TEST(ServingStress, SlowExporterNeverHoldsRegistryAgainstChurn) {
  // Regression for the stats_all/metrics_snapshot stop-the-world bug: the
  // aggregation pass used to run under the registry mutex, so an exporter
  // mid-sweep blocked every create/remove.  Now handles are pinned under a
  // brief reader lock and aggregated after release — sessions removed
  // mid-sweep stay alive through the exporter's shared_ptr (no
  // use-after-free), and churn completes regardless of exporter cadence.
  obs::Registry registry;
  harmony::SessionManager manager;
  // Enough sessions that one aggregation sweep is meaningfully long.
  for (int s = 0; s < 24; ++s) {
    const std::string name = "bed-" + std::to_string(s);
    manager.create(name, std::make_unique<FixedStrategy>(Point{1.0}), 2,
                   quiet_options(registry, name));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> sweeps{0};
  std::jthread exporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto stats = manager.stats_all();
      EXPECT_GE(stats.size(), 24u);  // the fixed bed is always listed
      const obs::RegistrySnapshot snap = manager.metrics_snapshot();
      EXPECT_FALSE(snap.instruments.empty());
      sweeps.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr int kCycles = 400;
  for (int i = 0; i < kCycles; ++i) {
    const std::string name = "hot-" + std::to_string(i % 5);
    auto server =
        manager.create(name, std::make_unique<FixedStrategy>(Point{2.0}), 2,
                       quiet_options(registry, name));
    Point scratch;
    server->fetch_into(0, scratch);
    server->report(0, 1.0);
    ASSERT_TRUE(manager.remove(name));
    // The pinned handle keeps working after remove (unlisted session).
    server->fetch_into(1, scratch);
    server->report(1, 2.0);
  }
  // Require sweeps to have run concurrently with the churn epoch (on one
  // core the exporter may not have been scheduled yet): keep light churn
  // going until it has swept a few times.
  for (int i = 0; sweeps.load(std::memory_order_relaxed) < 3; ++i) {
    const std::string name = "tail-" + std::to_string(i % 3);
    manager.create(name, std::make_unique<FixedStrategy>(Point{2.0}), 2,
                   quiet_options(registry, name));
    ASSERT_TRUE(manager.remove(name));
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  exporter.join();

  EXPECT_GE(sweeps.load(), 3u);
  EXPECT_EQ(manager.size(), 24u);  // every hot session was removed
}

TEST(ServingStress, TickFrequencyDoesNotPerturbFetchPath) {
  // Server::tick() is deadline enforcement: with the deadline far away it
  // must return after two atomic loads, never touching the collecting
  // gate.  Drive identical soaks with no ticker and with an aggressive
  // 4 kHz ticker; semantics must be identical (same rounds, no expiries,
  // no discards) and the fetch latency distribution must not shift by
  // more than scheduler noise.  Bounds are deliberately generous — the
  // regression this guards (tick serializing against in-flight fetches)
  // shifts p50 by orders of magnitude, not percentages.
  apps::LoadgenOptions base;
  base.sessions = 2;
  base.ranks = 8;
  base.workers = 2;
  base.rounds = 120;
  base.dims = 2;
  base.heavy_tail = false;
  base.report_timeout = std::chrono::duration<double>(30.0);
  base.monitor = false;

  apps::LoadgenOptions ticked = base;
  ticked.tick_hz = 4000.0;

  const apps::LoadgenReport quiet = apps::run_loadgen(base);
  const apps::LoadgenReport noisy = apps::run_loadgen(ticked);

  const std::uint64_t expected_rounds = base.sessions * base.rounds;
  EXPECT_EQ(quiet.rounds_completed, expected_rounds);
  EXPECT_EQ(noisy.rounds_completed, expected_rounds);
  for (const apps::LoadgenReport* rep : {&quiet, &noisy}) {
    EXPECT_EQ(rep->protocol_errors, 0u);
    EXPECT_EQ(rep->deadline_expiries, 0u);
    EXPECT_EQ(rep->discarded_reports, 0u);
    EXPECT_GT(rep->fetch_ops, 0u);
  }
  EXPECT_EQ(quiet.ticks, 0u);
  EXPECT_GT(noisy.ticks, 0u);

  // Median insensitivity (log2-bucketed histograms quantize to 2x; a
  // tick() that blocked fetches behind the deadline lock would multiply
  // p50 by far more than the 16x allowed here, even under TSan).
  EXPECT_GT(quiet.fetch_p50_ns, 0.0);
  EXPECT_LE(noisy.fetch_p50_ns, 16.0 * quiet.fetch_p50_ns);
  // Tail sanity: p99.9 stays in scheduler-noise territory (well under the
  // 30 s deadline a blocking tick would push fetches toward).
  EXPECT_LT(noisy.fetch_p999_ns, 2.0e9);
}

}  // namespace
}  // namespace protuner
