// End-to-end tests of the epoll serving tier (net/net_server.h) over real
// loopback sockets: session completion through net::HarmonyClient,
// rank multiplexing, malformed-frame containment (Error frame + close,
// server survives), dead-client-mid-round straggler handling under the
// PR-3 deadline machinery, and wire-telemetry visibility through obs::.
//
// Each test runs the NetServer loop on a dedicated thread and drives it
// from the test thread through real connections — the same topology as a
// production deployment, minus network distance.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/fixed.h"
#include "harmony/session_manager.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/net_server.h"
#include "obs/metrics.h"

namespace protuner {
namespace {

using core::Point;

struct LoopFixture {
  obs::Registry registry;
  harmony::SessionManager manager;
  std::unique_ptr<net::NetServer> server;
  std::thread loop;

  explicit LoopFixture(net::NetServerOptions options = {}) {
    options.metrics = &registry;
    // A short poll interval keeps deadline sweeps and parked-fetch checks
    // responsive at test scale.
    options.poll_interval = std::chrono::milliseconds(1);
    server = std::make_unique<net::NetServer>(manager, options);
    loop = std::thread([this] { server->run(); });
  }

  ~LoopFixture() {
    server->stop();
    loop.join();
  }

  std::shared_ptr<harmony::Server> host(const std::string& name,
                                        std::size_t clients,
                                        harmony::ServerOptions so = {}) {
    so.metrics = &registry;
    so.session = name;
    return manager.create(
        name, std::make_unique<core::FixedStrategy>(Point{1.0, 2.0}),
        clients, so);
  }

  net::ClientOptions client_options() const {
    net::ClientOptions co;
    co.port = server->port();
    return co;
  }
};

TEST(NetLoop, SingleConnectionDrivesAWholeSessionToCompletion) {
  LoopFixture fx;
  auto hosted = fx.host("solo", 4);
  net::HarmonyClient client(fx.client_options());
  EXPECT_EQ(client.attach("solo", 0), 4u);
  Point cfg;
  constexpr std::size_t kRounds = 25;
  for (std::size_t k = 0; k < kRounds; ++k) {
    // One connection multiplexes all four ranks, phase-locked.
    for (std::uint32_t r = 0; r < 4; ++r) {
      client.fetch_into(r, cfg);
      EXPECT_EQ(cfg, (Point{1.0, 2.0}));
    }
    for (std::uint32_t r = 0; r < 4; ++r) {
      client.report(r, 1.0 + r);
    }
  }
  client.detach(0);
  EXPECT_EQ(hosted->rounds_completed(), kRounds);
  EXPECT_DOUBLE_EQ(hosted->total_time(), kRounds * 4.0);  // max over ranks
}

TEST(NetLoop, ManyConnectionsShareOneSession) {
  LoopFixture fx;
  auto hosted = fx.host("shared", 8);
  constexpr std::size_t kRounds = 10;
  std::vector<std::thread> drivers;
  for (std::uint32_t r = 0; r < 8; ++r) {
    drivers.emplace_back([&fx, r] {
      net::HarmonyClient client(fx.client_options());
      client.attach("shared", r);
      Point cfg;
      for (std::size_t k = 0; k < kRounds; ++k) {
        client.fetch_into(r, cfg);
        client.report(r, 1.0);
      }
      client.detach(r);
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(hosted->rounds_completed(), kRounds);
  EXPECT_EQ(fx.server->connections_accepted(), 8u);
}

TEST(NetLoop, MalformedFrameGetsErrorFrameAndCloseServerSurvives) {
  LoopFixture fx;
  auto hosted = fx.host("resilient", 1);

  // Raw socket: send garbage that fails frame validation (bad version).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::vector<std::uint8_t> garbage;
  net::append_simple(garbage, net::MsgType::kAttach, 0, "resilient");
  garbage[4] = 0x7F;  // wrong wire version
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  // The server answers with one Error frame, then closes.
  std::vector<std::uint8_t> reply(4096);
  std::size_t got = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, reply.data() + got, reply.size() - got, 0);
    if (n <= 0) break;  // clean EOF after the error frame
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  const net::Decoded d = net::decode_frame({reply.data(), got});
  ASSERT_EQ(d.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(d.frame.type, net::MsgType::kError);
  EXPECT_EQ(fx.server->decode_errors(), 1u);

  // The loop is unharmed: a well-behaved client completes rounds.
  net::HarmonyClient client(fx.client_options());
  client.attach("resilient", 0);
  Point cfg;
  for (int k = 0; k < 5; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 1.0);
  }
  client.detach(0);
  EXPECT_EQ(hosted->rounds_completed(), 5u);
}

TEST(NetLoop, ProtocolMisuseMapsToProtocolErrorOnTheClient) {
  LoopFixture fx;
  fx.host("strict", 2);
  {
    // Fetch before attach.
    net::HarmonyClient client(fx.client_options());
    Point cfg;
    EXPECT_THROW(client.fetch_into(0, cfg), harmony::ProtocolError);
  }
  {
    // Unknown session.
    net::HarmonyClient client(fx.client_options());
    EXPECT_THROW(client.attach("no-such-session", 0),
                 harmony::ProtocolError);
  }
  {
    // Out-of-range rank.
    net::HarmonyClient client(fx.client_options());
    client.attach("strict", 0);
    Point cfg;
    EXPECT_THROW(client.fetch_into(99, cfg), harmony::ProtocolError);
  }
  {
    // Double fetch without report.
    net::HarmonyClient client(fx.client_options());
    client.attach("strict", 0);
    Point cfg;
    client.fetch_into(0, cfg);
    EXPECT_THROW(client.fetch_into(0, cfg), harmony::ProtocolError);
  }
}

TEST(NetLoop, DeadClientMidRoundBecomesAStraggler) {
  LoopFixture fx;
  harmony::ServerOptions so;
  so.report_timeout = std::chrono::duration<double>(0.05);
  so.straggler_policy = harmony::StragglerPolicy::kShrink;
  auto hosted = fx.host("deadline", 2, so);

  // Rank 1 fetches its assignment and dies without reporting.
  {
    net::HarmonyClient doomed(fx.client_options());
    doomed.attach("deadline", 1);
    Point cfg;
    doomed.fetch_into(1, cfg);
    doomed.close();  // no detach, no report: a crashed client
  }

  // Rank 0 keeps serving; the loop's tick sweep must expire the deadline,
  // impute the straggler and keep rounds flowing.
  net::HarmonyClient client(fx.client_options());
  client.attach("deadline", 0);
  Point cfg;
  for (int k = 0; k < 3; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 1.0);
  }
  client.detach(0);
  EXPECT_GE(hosted->rounds_completed(), 3u);
  EXPECT_EQ(hosted->active_ranks(), 1u);  // rank 1 dropped as straggler
}

TEST(NetLoop, WireTelemetryIsVisibleThroughObs) {
  LoopFixture fx;
  fx.host("observed", 1);
  net::HarmonyClient client(fx.client_options());
  client.attach("observed", 0);
  Point cfg;
  for (int k = 0; k < 10; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 2.0);
  }
  client.detach(0);

  const obs::RegistrySnapshot snap = fx.registry.snapshot();
  bool saw_fetch_hist = false;
  bool saw_report_hist = false;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t accepted = 0;
  for (const obs::InstrumentSnapshot& inst : snap.instruments) {
    if (inst.name == "protuner_net_fetch_wire_ns") {
      saw_fetch_hist = true;
      EXPECT_EQ(inst.hist.count, 10u);
      ASSERT_EQ(inst.labels.size(), 1u);
      EXPECT_EQ(inst.labels[0].first, "session");
      EXPECT_EQ(inst.labels[0].second, "observed");
    }
    if (inst.name == "protuner_net_report_wire_ns") {
      saw_report_hist = true;
      EXPECT_EQ(inst.hist.count, 10u);
    }
    if (inst.name == "protuner_net_bytes_in_total") {
      bytes_in = static_cast<std::uint64_t>(inst.value);
    }
    if (inst.name == "protuner_net_bytes_out_total") {
      bytes_out = static_cast<std::uint64_t>(inst.value);
    }
    if (inst.name == "protuner_net_connections_accepted_total") {
      accepted = static_cast<std::uint64_t>(inst.value);
    }
  }
  EXPECT_TRUE(saw_fetch_hist);
  EXPECT_TRUE(saw_report_hist);
  EXPECT_GT(bytes_in, 0u);
  EXPECT_GT(bytes_out, 0u);
  EXPECT_EQ(accepted, 1u);

  // The Prometheus exposition carries the net tier.
  std::ostringstream prom;
  obs::render_prometheus(prom, snap);
  const std::string page = prom.str();
  EXPECT_NE(page.find("protuner_net_bytes_in_total"), std::string::npos);
  EXPECT_NE(page.find("protuner_net_fetch_wire_ns"), std::string::npos);
  EXPECT_NE(page.find("session=\"observed\""), std::string::npos);
}

TEST(NetLoop, SessionManagerSnapshotSeesNetAndSessionTelemetryTogether) {
  LoopFixture fx;
  fx.host("combined", 1);
  net::HarmonyClient client(fx.client_options());
  client.attach("combined", 0);
  Point cfg;
  client.fetch_into(0, cfg);
  client.report(0, 1.0);
  client.detach(0);
  // Both the harmony server instruments and the wire instruments live in
  // the one registry the fixture wired everywhere.
  const obs::RegistrySnapshot snap = fx.registry.snapshot();
  bool harmony_fetch = false;
  bool wire_fetch = false;
  for (const obs::InstrumentSnapshot& inst : snap.instruments) {
    harmony_fetch |= inst.name == "protuner_harmony_fetch_ns";
    wire_fetch |= inst.name == "protuner_net_fetch_wire_ns";
  }
  EXPECT_TRUE(harmony_fetch);
  EXPECT_TRUE(wire_fetch);
}

}  // namespace
}  // namespace protuner
