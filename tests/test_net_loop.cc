// End-to-end tests of the epoll serving tier (net/net_server.h) over real
// loopback sockets: session completion through net::HarmonyClient,
// rank multiplexing, malformed-frame containment (Error frame + close,
// server survives), dead-client-mid-round straggler handling under the
// PR-3 deadline machinery, and wire-telemetry visibility through obs::.
//
// Each test runs the NetServer loop on a dedicated thread and drives it
// from the test thread through real connections — the same topology as a
// production deployment, minus network distance.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/fixed.h"
#include "harmony/session_manager.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/net_server.h"
#include "net/stats_codec.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace protuner {
namespace {

using core::Point;

struct LoopFixture {
  obs::Registry registry;
  harmony::SessionManager manager;
  std::unique_ptr<net::NetServer> server;
  std::thread loop;

  explicit LoopFixture(net::NetServerOptions options = {}) {
    options.metrics = &registry;
    // A short poll interval keeps deadline sweeps and parked-fetch checks
    // responsive at test scale.
    options.poll_interval = std::chrono::milliseconds(1);
    server = std::make_unique<net::NetServer>(manager, options);
    loop = std::thread([this] { server->run(); });
  }

  ~LoopFixture() {
    server->stop();
    loop.join();
  }

  std::shared_ptr<harmony::Server> host(const std::string& name,
                                        std::size_t clients,
                                        harmony::ServerOptions so = {}) {
    so.metrics = &registry;
    so.session = name;
    return manager.create(
        name, std::make_unique<core::FixedStrategy>(Point{1.0, 2.0}),
        clients, so);
  }

  net::ClientOptions client_options() const {
    net::ClientOptions co;
    co.port = server->port();
    return co;
  }
};

TEST(NetLoop, SingleConnectionDrivesAWholeSessionToCompletion) {
  LoopFixture fx;
  auto hosted = fx.host("solo", 4);
  net::HarmonyClient client(fx.client_options());
  EXPECT_EQ(client.attach("solo", 0), 4u);
  Point cfg;
  constexpr std::size_t kRounds = 25;
  for (std::size_t k = 0; k < kRounds; ++k) {
    // One connection multiplexes all four ranks, phase-locked.
    for (std::uint32_t r = 0; r < 4; ++r) {
      client.fetch_into(r, cfg);
      EXPECT_EQ(cfg, (Point{1.0, 2.0}));
    }
    for (std::uint32_t r = 0; r < 4; ++r) {
      client.report(r, 1.0 + r);
    }
  }
  client.detach(0);
  EXPECT_EQ(hosted->rounds_completed(), kRounds);
  EXPECT_DOUBLE_EQ(hosted->total_time(), kRounds * 4.0);  // max over ranks
}

TEST(NetLoop, ManyConnectionsShareOneSession) {
  LoopFixture fx;
  auto hosted = fx.host("shared", 8);
  constexpr std::size_t kRounds = 10;
  std::vector<std::thread> drivers;
  for (std::uint32_t r = 0; r < 8; ++r) {
    drivers.emplace_back([&fx, r] {
      net::HarmonyClient client(fx.client_options());
      client.attach("shared", r);
      Point cfg;
      for (std::size_t k = 0; k < kRounds; ++k) {
        client.fetch_into(r, cfg);
        client.report(r, 1.0);
      }
      client.detach(r);
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(hosted->rounds_completed(), kRounds);
  EXPECT_EQ(fx.server->connections_accepted(), 8u);
}

TEST(NetLoop, MalformedFrameGetsErrorFrameAndCloseServerSurvives) {
  LoopFixture fx;
  auto hosted = fx.host("resilient", 1);

  // Raw socket: send garbage that fails frame validation (bad version).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::vector<std::uint8_t> garbage;
  net::append_simple(garbage, net::MsgType::kAttach, 0, "resilient");
  garbage[4] = 0x7F;  // wrong wire version
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  // The server answers with one Error frame, then closes.
  std::vector<std::uint8_t> reply(4096);
  std::size_t got = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, reply.data() + got, reply.size() - got, 0);
    if (n <= 0) break;  // clean EOF after the error frame
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  const net::Decoded d = net::decode_frame({reply.data(), got});
  ASSERT_EQ(d.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(d.frame.type, net::MsgType::kError);
  EXPECT_EQ(fx.server->decode_errors(), 1u);

  // The loop is unharmed: a well-behaved client completes rounds.
  net::HarmonyClient client(fx.client_options());
  client.attach("resilient", 0);
  Point cfg;
  for (int k = 0; k < 5; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 1.0);
  }
  client.detach(0);
  EXPECT_EQ(hosted->rounds_completed(), 5u);
}

TEST(NetLoop, ProtocolMisuseMapsToProtocolErrorOnTheClient) {
  LoopFixture fx;
  fx.host("strict", 2);
  {
    // Fetch before attach.
    net::HarmonyClient client(fx.client_options());
    Point cfg;
    EXPECT_THROW(client.fetch_into(0, cfg), harmony::ProtocolError);
  }
  {
    // Unknown session.
    net::HarmonyClient client(fx.client_options());
    EXPECT_THROW(client.attach("no-such-session", 0),
                 harmony::ProtocolError);
  }
  {
    // Out-of-range rank.
    net::HarmonyClient client(fx.client_options());
    client.attach("strict", 0);
    Point cfg;
    EXPECT_THROW(client.fetch_into(99, cfg), harmony::ProtocolError);
  }
  {
    // Double fetch without report.
    net::HarmonyClient client(fx.client_options());
    client.attach("strict", 0);
    Point cfg;
    client.fetch_into(0, cfg);
    EXPECT_THROW(client.fetch_into(0, cfg), harmony::ProtocolError);
  }
}

TEST(NetLoop, DeadClientMidRoundBecomesAStraggler) {
  LoopFixture fx;
  harmony::ServerOptions so;
  so.report_timeout = std::chrono::duration<double>(0.05);
  so.straggler_policy = harmony::StragglerPolicy::kShrink;
  auto hosted = fx.host("deadline", 2, so);

  // Rank 1 fetches its assignment and dies without reporting.
  {
    net::HarmonyClient doomed(fx.client_options());
    doomed.attach("deadline", 1);
    Point cfg;
    doomed.fetch_into(1, cfg);
    doomed.close();  // no detach, no report: a crashed client
  }

  // Rank 0 keeps serving; the loop's tick sweep must expire the deadline,
  // impute the straggler and keep rounds flowing.
  net::HarmonyClient client(fx.client_options());
  client.attach("deadline", 0);
  Point cfg;
  for (int k = 0; k < 3; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 1.0);
  }
  client.detach(0);
  EXPECT_GE(hosted->rounds_completed(), 3u);
  EXPECT_EQ(hosted->active_ranks(), 1u);  // rank 1 dropped as straggler
}

TEST(NetLoop, WireTelemetryIsVisibleThroughObs) {
  LoopFixture fx;
  fx.host("observed", 1);
  net::HarmonyClient client(fx.client_options());
  client.attach("observed", 0);
  Point cfg;
  for (int k = 0; k < 10; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 2.0);
  }
  client.detach(0);

  const obs::RegistrySnapshot snap = fx.registry.snapshot();
  bool saw_fetch_hist = false;
  bool saw_report_hist = false;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t accepted = 0;
  for (const obs::InstrumentSnapshot& inst : snap.instruments) {
    if (inst.name == "protuner_net_fetch_wire_ns") {
      saw_fetch_hist = true;
      EXPECT_EQ(inst.hist.count, 10u);
      ASSERT_EQ(inst.labels.size(), 1u);
      EXPECT_EQ(inst.labels[0].first, "session");
      EXPECT_EQ(inst.labels[0].second, "observed");
    }
    if (inst.name == "protuner_net_report_wire_ns") {
      saw_report_hist = true;
      EXPECT_EQ(inst.hist.count, 10u);
    }
    if (inst.name == "protuner_net_bytes_in_total") {
      bytes_in = static_cast<std::uint64_t>(inst.value);
    }
    if (inst.name == "protuner_net_bytes_out_total") {
      bytes_out = static_cast<std::uint64_t>(inst.value);
    }
    if (inst.name == "protuner_net_connections_accepted_total") {
      accepted = static_cast<std::uint64_t>(inst.value);
    }
  }
  EXPECT_TRUE(saw_fetch_hist);
  EXPECT_TRUE(saw_report_hist);
  EXPECT_GT(bytes_in, 0u);
  EXPECT_GT(bytes_out, 0u);
  EXPECT_EQ(accepted, 1u);

  // The Prometheus exposition carries the net tier.
  std::ostringstream prom;
  obs::render_prometheus(prom, snap);
  const std::string page = prom.str();
  EXPECT_NE(page.find("protuner_net_bytes_in_total"), std::string::npos);
  EXPECT_NE(page.find("protuner_net_fetch_wire_ns"), std::string::npos);
  EXPECT_NE(page.find("session=\"observed\""), std::string::npos);
}

TEST(NetLoop, Version1ClientInteroperatesWithTheV2Server) {
  // A PR-9 peer: wire version 1, no trace trailers, no Stats push.  The v2
  // server must speak v1 back to it for a complete attach → fetch → report
  // → detach lifecycle.
  LoopFixture fx;
  auto hosted = fx.host("legacy", 2);
  obs::Registry client_registry;
  net::ClientOptions co = fx.client_options();
  co.wire_version = 1;
  co.metrics = &client_registry;
  net::HarmonyClient old_client(co);
  EXPECT_EQ(old_client.attach("legacy", 0), 2u);
  net::HarmonyClient new_client(fx.client_options());
  new_client.attach("legacy", 1);
  Point cfg;
  constexpr std::size_t kRounds = 10;
  for (std::size_t k = 0; k < kRounds; ++k) {
    old_client.fetch_into(0, cfg);
    EXPECT_EQ(cfg, (Point{1.0, 2.0}));
    new_client.fetch_into(1, cfg);
    old_client.report(0, 1.0);
    new_client.report(1, 2.0);
  }
  old_client.detach(0);  // v1: the detach ships no stats frame
  new_client.detach(1);
  EXPECT_EQ(hosted->rounds_completed(), kRounds);
  EXPECT_EQ(fx.server->decode_errors(), 0u);
  // Nothing was merged for the v1 client: no {client="0"} series appeared.
  for (const obs::InstrumentSnapshot& inst : fx.registry.snapshot().instruments) {
    for (const auto& [k, v] : inst.labels) {
      EXPECT_FALSE(k == "client" && v == "0") << inst.name;
    }
  }
}

const obs::InstrumentSnapshot* find_with_client_label(
    const obs::RegistrySnapshot& snap, std::string_view name,
    std::string_view client) {
  for (const obs::InstrumentSnapshot& inst : snap.instruments) {
    if (inst.name != name) continue;
    for (const auto& [k, v] : inst.labels) {
      if (k == "client" && v == client) return &inst;
    }
  }
  return nullptr;
}

TEST(NetLoop, ClientStatsPushMergesUnderTheClientLabel) {
  LoopFixture fx;
  fx.host("telemetry", 1);
  obs::Registry client_registry;
  obs::Counter& widgets =
      client_registry.counter("loadgen_widgets_total", "app-side counter");
  obs::Histogram& think =
      client_registry.histogram("loadgen_think_ns", "app-side latency");
  net::ClientOptions co = fx.client_options();
  co.metrics = &client_registry;
  co.stats_every_rounds = 2;  // push after every second report
  net::HarmonyClient client(co);
  client.attach("telemetry", 0);  // rank 0 names the series

  widgets.add(7);
  think.record(1000.0);
  Point cfg;
  for (int k = 0; k < 2; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 1.0);
  }
  // The periodic push is synchronous with the second report's ack.
  const obs::RegistrySnapshot mid = fx.registry.snapshot();
  const obs::InstrumentSnapshot* merged =
      find_with_client_label(mid, "loadgen_widgets_total", "0");
  ASSERT_NE(merged, nullptr) << "periodic push did not reach the server";
  EXPECT_EQ(merged->value, 7.0);
  const obs::InstrumentSnapshot* hist =
      find_with_client_label(mid, "loadgen_think_ns", "0");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, 1u);
  // The client's own wire histograms ride along, client-labelled.
  EXPECT_NE(find_with_client_label(mid, "protuner_net_client_fetch_ns", "0"),
            nullptr);

  // More activity, then detach: the final delta accumulates on top.
  widgets.add(3);
  think.record(5000.0);
  client.detach(0);
  const obs::RegistrySnapshot after = fx.registry.snapshot();
  merged = find_with_client_label(after, "loadgen_widgets_total", "0");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->value, 10.0) << "deltas must accumulate across pushes";
  hist = find_with_client_label(after, "loadgen_think_ns", "0");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, 2u);
  EXPECT_DOUBLE_EQ(hist->hist.max, 5000.0);
}

// Raw-socket driver for hostile-client tests: sends `wire` verbatim, reads
// to EOF, and returns the type of the last reply frame (the server closes
// after an Error, so that is what a contained failure ends with).
net::MsgType drive_raw(std::uint16_t port,
                       const std::vector<std::uint8_t>& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;  // server already closed on us: the replies tell all
    sent += static_cast<std::size_t>(n);
  }
  std::vector<std::uint8_t> reply(1 << 16);
  std::size_t got = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, reply.data() + got, reply.size() - got, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  net::MsgType last = net::MsgType::kAttach;
  bool any = false;
  std::size_t off = 0;
  for (;;) {
    const net::Decoded d = net::decode_frame({reply.data() + off, got - off});
    if (d.status != net::DecodeStatus::kFrame) break;
    last = d.frame.type;
    any = true;
    off += d.consumed;
  }
  EXPECT_TRUE(any) << "no decodable reply frame";
  return last;
}

std::vector<std::uint8_t> stats_frame(const obs::RegistrySnapshot& snap) {
  std::vector<std::uint8_t> body;
  net::encode_stats(body, snap);
  std::vector<std::uint8_t> frame;
  net::append_frame(frame, net::MsgType::kStats, 0, {},
                    {body.data(), body.size()});
  return frame;
}

TEST(NetLoop, KindMismatchStatsPushClosesTheConnectionNotTheServer) {
  // Regression: merge_from throws std::logic_error when a pushed instrument
  // collides with an existing one of a different kind.  Escaping the event
  // loop would std::terminate the whole server; it must cost exactly the
  // one connection, like any other client misbehaviour.
  LoopFixture fx;
  auto hosted = fx.host("armored", 1);

  std::vector<std::uint8_t> wire;
  net::append_simple(wire, net::MsgType::kAttach, 0, "armored");
  obs::Registry first;
  first.counter("flip_total").add(1);
  const std::vector<std::uint8_t> push1 = stats_frame(first.snapshot());
  wire.insert(wire.end(), push1.begin(), push1.end());
  obs::Registry second;
  second.gauge("flip_total").set(1);  // same name+labels, different kind
  const std::vector<std::uint8_t> push2 = stats_frame(second.snapshot());
  wire.insert(wire.end(), push2.begin(), push2.end());

  EXPECT_EQ(drive_raw(fx.server->port(), wire), net::MsgType::kError);
  EXPECT_GE(fx.server->decode_errors(), 1u);

  // The loop is unharmed: a well-behaved client completes rounds.
  net::HarmonyClient client(fx.client_options());
  client.attach("armored", 0);
  Point cfg;
  for (int k = 0; k < 3; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 1.0);
  }
  client.detach(0);
  EXPECT_EQ(hosted->rounds_completed(), 3u);
}

TEST(NetLoop, StatsSeriesChurnPastTheCapClosesTheConnection) {
  // A client minting unique metric names on every push would grow the
  // server registry (and the /metrics page) without bound; past the
  // per-connection cap the push is rejected and the connection closed.
  net::NetServerOptions no;
  no.max_stats_series = 8;
  LoopFixture fx(no);
  auto hosted = fx.host("bounded", 1);
  const std::size_t before = fx.registry.size();

  obs::Registry churner;
  for (int i = 0; i < 20; ++i) {
    churner.counter("churn_" + std::to_string(i) + "_total").add(1);
  }
  std::vector<std::uint8_t> wire;
  net::append_simple(wire, net::MsgType::kAttach, 0, "bounded");
  const std::vector<std::uint8_t> push = stats_frame(churner.snapshot());
  wire.insert(wire.end(), push.begin(), push.end());

  EXPECT_EQ(drive_raw(fx.server->port(), wire), net::MsgType::kError);
  EXPECT_GE(fx.server->decode_errors(), 1u);
  // At most the cap's worth of churn series landed (+2 for the session's
  // own wire histograms, minted by the attach).
  EXPECT_LE(fx.registry.size(), before + 2 + 8);
  const obs::RegistrySnapshot snap = fx.registry.snapshot();
  EXPECT_NE(find_with_client_label(snap, "churn_0_total", "0"), nullptr)
      << "series under the cap still merge";
  EXPECT_EQ(find_with_client_label(snap, "churn_19_total", "0"), nullptr);

  // The loop is unharmed: a well-behaved client completes rounds.
  net::HarmonyClient client(fx.client_options());
  client.attach("bounded", 0);
  Point cfg;
  for (int k = 0; k < 3; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 1.0);
  }
  client.detach(0);
  EXPECT_EQ(hosted->rounds_completed(), 3u);
}

TEST(NetLoop, WatchdogStallDumpCapturesTheParkedFetchAndTheImpute) {
  // The acceptance scenario for the flight recorder: a client dies holding
  // a round open, the survivor's next fetch parks, the deadline imputes
  // the dead rank, and when the fleet finally goes quiet the stall
  // watchdog dumps a ring that still holds both edges.
  obs::FlightRecorder flight(512);
  net::NetServerOptions no;
  no.stall_timeout = std::chrono::duration<double>(0.25);
  no.flight = &flight;
  LoopFixture fx(no);
  harmony::ServerOptions so;
  so.report_timeout = std::chrono::duration<double>(0.05);
  so.straggler_policy = harmony::StragglerPolicy::kShrink;
  so.flight = &flight;
  auto hosted = fx.host("blackbox", 2, so);

  // Rank 1 fetches its assignment and dies mid-round.
  {
    net::HarmonyClient doomed(fx.client_options());
    doomed.attach("blackbox", 1);
    Point cfg;
    doomed.fetch_into(1, cfg);
    doomed.close();
  }

  net::HarmonyClient client(fx.client_options());
  client.attach("blackbox", 0);
  Point cfg;
  client.fetch_into(0, cfg);
  client.report(0, 1.0);
  // Round 0 still waits on the dead rank 1: this fetch parks until the
  // deadline expires and imputes the straggler.
  client.fetch_into(0, cfg);
  // Now go silent while staying attached.  Rounds stop advancing; after
  // stall_timeout the watchdog declares the session stalled and dumps.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fx.server->stall_dumps() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(fx.server->stall_dumps(), 1u) << "watchdog never fired";

  // The ring holds the whole post-mortem: the parked fetch, the deadline
  // expiry, the imputation of the dead rank, and the stall declaration.
  bool saw_park = false;
  bool saw_impute_dead_rank = false;
  bool saw_deadline = false;
  bool saw_stall = false;
  bool saw_fail = false;
  for (const obs::FlightEvent& e : flight.snapshot()) {
    const std::string_view kind = e.kind != nullptr ? e.kind : "";
    saw_park |= kind == "fetch/park" && e.rank == 0;
    saw_impute_dead_rank |= kind == "rank/impute" && e.rank == 1;
    saw_deadline |= kind == "deadline/expire";
    saw_stall |= kind == "stall/dump";
    saw_fail |= kind == "session/fail";
  }
  EXPECT_TRUE(saw_park) << "parked fetch missing from the flight ring";
  EXPECT_TRUE(saw_impute_dead_rank)
      << "imputation of the dead rank missing from the flight ring";
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_fail) << "the fleet-wide silence must fail the session";
  EXPECT_GE(hosted->rounds_completed(), 1u);
  client.close();
}

TEST(NetLoop, SessionManagerSnapshotSeesNetAndSessionTelemetryTogether) {
  LoopFixture fx;
  fx.host("combined", 1);
  net::HarmonyClient client(fx.client_options());
  client.attach("combined", 0);
  Point cfg;
  client.fetch_into(0, cfg);
  client.report(0, 1.0);
  client.detach(0);
  // Both the harmony server instruments and the wire instruments live in
  // the one registry the fixture wired everywhere.
  const obs::RegistrySnapshot snap = fx.registry.snapshot();
  bool harmony_fetch = false;
  bool wire_fetch = false;
  for (const obs::InstrumentSnapshot& inst : snap.instruments) {
    harmony_fetch |= inst.name == "protuner_harmony_fetch_ns";
    wire_fetch |= inst.name == "protuner_net_fetch_wire_ns";
  }
  EXPECT_TRUE(harmony_fetch);
  EXPECT_TRUE(wire_fetch);
}

}  // namespace
}  // namespace protuner
