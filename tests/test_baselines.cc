// Tests for the comparator strategies: simulated annealing, genetic
// algorithm, random search, compass search and the fixed pin.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/simulated_cluster.h"
#include "core/annealing.h"
#include "core/compass.h"
#include "core/fixed.h"
#include "core/genetic.h"
#include "core/landscape.h"
#include "core/random_search.h"
#include "core/session.h"
#include "varmodel/noise_model.h"

namespace protuner::core {
namespace {

ParameterSpace int_box() {
  return ParameterSpace(
      {Parameter::integer("a", 0, 20), Parameter::integer("b", 0, 20)});
}

cluster::SimulatedCluster clean_cluster(LandscapePtr land, std::size_t ranks,
                                        std::uint64_t seed = 5) {
  return cluster::SimulatedCluster(
      std::move(land), std::make_shared<varmodel::NoNoise>(),
      {.ranks = ranks, .seed = seed});
}

TEST(Annealing, ProposalsAlwaysAdmissible) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{3.0, 3.0}, 1.0, 0.2);
  AnnealingStrategy sa(space, {});
  sa.start(4);
  for (int i = 0; i < 100; ++i) {
    const StepProposal p = sa.propose();
    ASSERT_EQ(p.configs.size(), 4u);
    std::vector<double> times;
    for (const auto& c : p.configs) {
      ASSERT_TRUE(space.admissible(c)) << "step " << i;
      times.push_back(land->clean_time(c));
    }
    sa.observe(times);
  }
}

TEST(Annealing, EventuallyNearsOptimum) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{8.0, 12.0}, 1.0, 0.3);
  auto machine = clean_cluster(land, 8);
  AnnealingStrategy sa(space, {});
  const SessionResult res = run_session(sa, machine, {.steps = 400});
  EXPECT_LT(res.best_clean, land->clean_time(space.center()));
}

TEST(Genetic, PopulationSizeTracksRanks) {
  const auto space = int_box();
  GeneticStrategy ga(space, {});
  ga.start(6);
  EXPECT_EQ(ga.propose().configs.size(), 6u);
}

TEST(Genetic, ImprovesBestOverGenerations) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{15.0, 15.0}, 1.0, 0.3);
  auto machine = clean_cluster(land, 10);
  GeneticStrategy ga(space, {});
  const SessionResult res = run_session(ga, machine, {.steps = 200});
  EXPECT_LT(res.best_clean, 1.0 + 0.3 * 60.0);  // far better than random corner
  EXPECT_TRUE(space.admissible(res.best));
  EXPECT_EQ(ga.generations(), 200u);
}

TEST(Genetic, ChildrenAlwaysAdmissible) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{5.0, 5.0}, 1.0, 0.2);
  GeneticStrategy ga(space, {});
  ga.start(8);
  for (int g = 0; g < 50; ++g) {
    const StepProposal p = ga.propose();
    std::vector<double> times;
    for (const auto& c : p.configs) {
      ASSERT_TRUE(space.admissible(c)) << "generation " << g;
      times.push_back(land->clean_time(c));
    }
    ga.observe(times);
  }
}

TEST(RandomSearch, BestValueMonotone) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{2.0, 18.0}, 1.0, 0.4);
  RandomSearchStrategy rs(space, 77);
  rs.start(4);
  double prev_best = 1e300;
  for (int i = 0; i < 100; ++i) {
    const StepProposal p = rs.propose();
    std::vector<double> times;
    for (const auto& c : p.configs) times.push_back(land->clean_time(c));
    rs.observe(times);
    EXPECT_LE(rs.best_estimate(), prev_best);
    prev_best = rs.best_estimate();
  }
}

TEST(Compass, ConvergesOnQuadratic) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{6.0, 14.0}, 1.0, 0.3);
  auto machine = clean_cluster(land, 8);
  CompassStrategy cs(space, {});
  const SessionResult res = run_session(cs, machine, {.steps = 300});
  EXPECT_EQ(res.best, (Point{6.0, 14.0}));
  EXPECT_TRUE(cs.converged());
}

TEST(Compass, FreezesAfterConvergence) {
  const auto space = int_box();
  auto land = std::make_shared<QuadraticLandscape>(Point{6.0, 6.0}, 1.0, 0.3);
  auto machine = clean_cluster(land, 8);
  CompassStrategy cs(space, {});
  (void)run_session(cs, machine, {.steps = 400});
  ASSERT_TRUE(cs.converged());
  const StepProposal p = cs.propose();
  EXPECT_EQ(p.configs.size(), 8u);  // all ranks run the incumbent
  for (const auto& c : p.configs) EXPECT_EQ(c, (Point{6.0, 6.0}));
}

TEST(Fixed, AlwaysProposesSameConfigOnAllRanks) {
  FixedStrategy fx(Point{3.0, 4.0});
  fx.start(5);
  const StepProposal p = fx.propose();
  ASSERT_EQ(p.configs.size(), 5u);
  for (const auto& c : p.configs) EXPECT_EQ(c, (Point{3.0, 4.0}));
  EXPECT_TRUE(fx.converged());
}

}  // namespace
}  // namespace protuner::core
