// Tests for the declarative spec layer (DESIGN.md §13): the grammar and
// its round-trip law, typed option consumption with did-you-mean
// diagnostics, and the self-registering family registries (strategies,
// noise models, landscapes, evaluators).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/evaluator_spec.h"
#include "core/strategy_spec.h"
#include "gs2/landscape_spec.h"
#include "spec/registry.h"
#include "spec/spec.h"
#include "varmodel/noise_spec.h"

namespace protuner {
namespace {

using spec::Options;
using spec::Spec;
using spec::SpecError;

// ----------------------------------------------------------------- grammar

TEST(SpecGrammar, ParsesBareName) {
  const Spec s = spec::parse("pro");
  EXPECT_EQ(s.name, "pro");
  EXPECT_TRUE(s.options.empty());
  EXPECT_EQ(spec::to_string(s), "pro");
}

TEST(SpecGrammar, ParsesKeyValueOptions) {
  const Spec s = spec::parse("pro:k=4,reflect=2");
  EXPECT_EQ(s.name, "pro");
  ASSERT_EQ(s.options.size(), 2u);
  EXPECT_EQ(s.options[0].first, "k");
  EXPECT_EQ(s.options[0].second, "4");
  EXPECT_EQ(s.options[1].first, "reflect");
  EXPECT_EQ(s.options[1].second, "2");
}

TEST(SpecGrammar, BareKeyIsAFlag) {
  const Spec s = spec::parse("pro:racing");
  ASSERT_EQ(s.options.size(), 1u);
  EXPECT_EQ(s.options[0].first, "racing");
  EXPECT_EQ(s.options[0].second, "1");
}

TEST(SpecGrammar, TrimsWhitespaceAroundTokens) {
  const Spec s = spec::parse("  pro : k = 4 , racing  ");
  EXPECT_EQ(s.name, "pro");
  ASSERT_EQ(s.options.size(), 2u);
  EXPECT_EQ(s.options[0].second, "4");
}

TEST(SpecGrammar, RoundTripsEveryParseableSpec) {
  for (const char* text :
       {"pro", "pro:k=4,racing=1", "spsa:a=0.2,c=0.1",
        "pareto:rho=0.1,alpha=1.7", "fixed:at=8/2/0.5",
        "rs:m=16,n0=4,est=min", "gs2db:stride=2,k=4,power=2"}) {
    const Spec s = spec::parse(text);
    EXPECT_EQ(spec::parse(spec::to_string(s)), s) << text;
  }
}

TEST(SpecGrammar, RejectsMalformedText) {
  EXPECT_THROW(spec::parse(""), SpecError);
  EXPECT_THROW(spec::parse(":k=1"), SpecError);       // empty name
  EXPECT_THROW(spec::parse("pro:"), SpecError);       // dangling colon
  EXPECT_THROW(spec::parse("pro:k=1,"), SpecError);   // dangling comma
  EXPECT_THROW(spec::parse("pro:=4"), SpecError);     // empty key
  EXPECT_THROW(spec::parse("pro:k=1,k=2"), SpecError);  // duplicate key
  EXPECT_THROW(spec::parse("p ro:k=1"), SpecError);   // bad name charset
}

// ----------------------------------------------------------------- options

TEST(SpecOptions, TypedGettersAndDefaults) {
  Options o("test", spec::parse("x:a=2.5,b=7,flag,name=min"));
  EXPECT_DOUBLE_EQ(o.get_double("a", 0.0), 2.5);
  EXPECT_EQ(o.get_int("b", 0), 7);
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_EQ(o.get_string("name", ""), "min");
  EXPECT_EQ(o.get_int("absent", 42), 42);
  o.finish();
}

TEST(SpecOptions, RejectsUntypeableValues) {
  Options o("test", spec::parse("x:a=banana"));
  EXPECT_THROW(o.get_double("a", 0.0), SpecError);
}

TEST(SpecOptions, RangeCheckedGettersNameTheInterval) {
  Options o("test", spec::parse("x:k=99"));
  try {
    o.get_int("k", 1, 1, 10);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("k"), std::string::npos) << msg;
    EXPECT_NE(msg.find("99"), std::string::npos) << msg;
    EXPECT_NE(msg.find("10"), std::string::npos) << msg;
  }
}

TEST(SpecOptions, UnknownKeyGetsDidYouMeanHint) {
  Options o("strategy", spec::parse("pro:reflct=2"));
  o.get_double("reflect", 2.0);
  try {
    o.finish();
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("reflct"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'reflect'"), std::string::npos) << msg;
  }
}

TEST(SpecOptions, AliasMapsToCanonicalKey) {
  Options o("noise", spec::parse("pareto:scale=0.3"));
  o.alias("scale", "rho");
  EXPECT_DOUBLE_EQ(o.get_double("rho", 0.1), 0.3);
  o.finish();
}

TEST(SpecOptions, ChoiceRejectsUnknownValueWithFullList) {
  Options o("strategy", spec::parse("pro:est=median"));
  try {
    o.get_choice("est", "min", {"min", "mean"});
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("median"), std::string::npos) << msg;
    EXPECT_NE(msg.find("min"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mean"), std::string::npos) << msg;
  }
}

TEST(SpecOptions, VectorValuesSplitOnSlash) {
  Options o("strategy", spec::parse("fixed:at=32/16/8"));
  const std::vector<double> at = o.get_doubles("at");
  ASSERT_EQ(at.size(), 3u);
  EXPECT_DOUBLE_EQ(at[0], 32.0);
  EXPECT_DOUBLE_EQ(at[2], 8.0);
  o.finish();
}

// -------------------------------------------------------------- registries

TEST(SpecRegistry, UnknownNameGetsDidYouMeanOverNamesAndAliases) {
  const core::ParameterSpace space({core::Parameter::integer("x", 0, 10)});
  try {
    (void)core::make_strategy("proo:k=3", space);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("proo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'pro'"), std::string::npos) << msg;
  }
  // Misspelled alias: nearest candidate comes from the alias list.
  EXPECT_THROW((void)core::make_strategy("nelder_mead", space), SpecError);
}

TEST(SpecRegistry, UnknownKeyFailsEvenWhenFactorySucceedsOtherwise) {
  const core::ParameterSpace space({core::Parameter::integer("x", 0, 10)});
  EXPECT_THROW((void)core::make_strategy("spsa:k=3", space), SpecError);
  EXPECT_THROW((void)core::make_strategy("pro:k=3,bogus=1", space),
               SpecError);
}

TEST(SpecRegistry, SeedArgumentFeedsStochasticStrategies) {
  const core::ParameterSpace space({
      core::Parameter::integer("x", 0, 100),
      core::Parameter::continuous("y", -1.0, 1.0),
  });
  const auto first_proposal = [&](std::uint64_t seed) {
    auto s = core::make_strategy("random", space, seed);
    s->start(4);
    return s->propose().configs;
  };
  EXPECT_EQ(first_proposal(7), first_proposal(7));
  EXPECT_NE(first_proposal(7), first_proposal(8));
}

TEST(SpecRegistry, NoiseSpecsConstructAndCompose) {
  auto none = varmodel::make_noise("none");
  ASSERT_NE(none, nullptr);
  EXPECT_DOUBLE_EQ(none->rho(), 0.0);
  auto pareto = varmodel::make_noise("pareto:rho=0.2,alpha=1.7");
  ASSERT_NE(pareto, nullptr);
  EXPECT_DOUBLE_EQ(pareto->rho(), 0.2);
  // '+' composes components; the composite's effective rho follows Eq. 7
  // applied to the combined mean disturbance at unit clean time.
  auto combo = varmodel::make_noise("exp:rho=0.05+pareto:rho=0.1,alpha=1.5");
  ASSERT_NE(combo, nullptr);
  const double mean_disturbance = 0.05 / 0.95 + 0.1 / 0.9;
  EXPECT_NEAR(combo->rho(), mean_disturbance / (1.0 + mean_disturbance),
              1e-9);
  EXPECT_THROW(varmodel::make_noise("pareto:rho=1.5"), SpecError);
}

TEST(SpecRegistry, LandscapeSpecsBundleSpaceAndLandscape) {
  for (const char* text :
       {"gs2", "gs2db:stride=3", "quad:dims=3", "multimodal:dims=2",
        "mixed"}) {
    const gs2::LandscapeBundle b = gs2::make_landscape(text);
    ASSERT_NE(b.landscape, nullptr) << text;
    ASSERT_GT(b.space.size(), 0u) << text;
    EXPECT_GT(b.landscape->clean_time(b.space.center()), 0.0) << text;
  }
  EXPECT_THROW(gs2::make_landscape("quad:dims=0"), SpecError);
}

TEST(SpecRegistry, EvaluatorSpecsBuildRunnableMachines) {
  const gs2::LandscapeBundle b = gs2::make_landscape("quad:dims=2");
  for (const char* text : {"simulated:ranks=4", "simulated:ranks=4,rho=0.2",
                           "trace:ranks=4,big_p=0.05"}) {
    auto machine = cluster::make_evaluator(text, b.landscape, nullptr, 7);
    ASSERT_NE(machine, nullptr) << text;
    EXPECT_EQ(machine->ranks(), 4u) << text;
    const std::vector<core::Point> configs(4, b.space.center());
    std::vector<double> out(4);
    machine->run_step_into({configs.data(), configs.size()},
                           {out.data(), out.size()});
    for (double t : out) EXPECT_GT(t, 0.0) << text;
  }
}

TEST(SpecRegistry, HelpListsEveryEntryWithExample) {
  const std::string help = core::strategy_registry().help();
  for (const char* name : {"pro", "sro", "nm", "spsa", "rs", "compass"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace protuner
