// Tests for the centre-directed projection operator Pi (§3.2.1), including
// the property the stopping criterion relies on: repeated shrinks drive
// every discrete coordinate onto the transformation centre in finitely many
// steps.
#include <gtest/gtest.h>

#include "core/projection.h"

namespace protuner::core {
namespace {

ParameterSpace int_space() {
  return ParameterSpace({Parameter::integer("a", 0, 10),
                         Parameter::integer("b", 0, 10)});
}

TEST(Projection, AdmissiblePointUnchanged) {
  const auto space = int_space();
  const Point x{3.0, 7.0};
  EXPECT_EQ(project(space, Point{5.0, 5.0}, x), x);
}

TEST(Projection, ClampsToBounds) {
  const auto space = int_space();
  const Point x{-4.0, 15.0};
  const Point p = project(space, Point{5.0, 5.0}, x);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 10.0);
}

TEST(Projection, RoundsTowardCenterBelow) {
  // centre < x: round down (toward the centre).
  const auto space = int_space();
  const Point p = project(space, Point{2.0, 2.0}, Point{5.5, 5.1});
  EXPECT_DOUBLE_EQ(p[0], 5.0);
  EXPECT_DOUBLE_EQ(p[1], 5.0);
}

TEST(Projection, RoundsTowardCenterAbove) {
  // centre > x: round up (toward the centre).
  const auto space = int_space();
  const Point p = project(space, Point{9.0, 9.0}, Point{5.5, 5.9});
  EXPECT_DOUBLE_EQ(p[0], 6.0);
  EXPECT_DOUBLE_EQ(p[1], 6.0);
}

TEST(Projection, MixedDirectionsPerAxis) {
  const auto space = int_space();
  const Point p = project(space, Point{2.0, 9.0}, Point{5.5, 5.5});
  EXPECT_DOUBLE_EQ(p[0], 5.0);  // centre below -> floor
  EXPECT_DOUBLE_EQ(p[1], 6.0);  // centre above -> ceil
}

TEST(Projection, DiscreteSetRounding) {
  const ParameterSpace space(
      {Parameter::discrete("d", {1.0, 4.0, 16.0, 64.0})});
  EXPECT_DOUBLE_EQ(project(space, Point{1.0}, Point{10.0})[0], 4.0);
  EXPECT_DOUBLE_EQ(project(space, Point{64.0}, Point{10.0})[0], 16.0);
}

TEST(Projection, ContinuousOnlyClamps) {
  const ParameterSpace space({Parameter::continuous("c", 0.0, 1.0)});
  EXPECT_DOUBLE_EQ(project(space, Point{0.5}, Point{0.3})[0], 0.3);
  EXPECT_DOUBLE_EQ(project(space, Point{0.5}, Point{1.7})[0], 1.0);
}

TEST(Projection, ShrinkConvergesToCenterInFiniteSteps) {
  // The §3.2.1 design property: x <- Pi(0.5 (v0 + x)) reaches v0 exactly.
  const auto space = int_space();
  const Point v0{4.0, 6.0};
  Point x{10.0, 0.0};
  int steps = 0;
  while (x != v0 && steps < 50) {
    x = project(space, v0, affine(0.5, v0, 0.5, x));
    ++steps;
  }
  EXPECT_EQ(x, v0);
  EXPECT_LE(steps, 10);
}

TEST(Projection, ShrinkConvergesOnCoarseDiscreteSet) {
  const ParameterSpace space(
      {Parameter::discrete("d", {4.0, 8.0, 16.0, 32.0, 64.0})});
  const Point v0{16.0};
  Point x{64.0};
  int steps = 0;
  while (x != v0 && steps < 50) {
    x = project(space, v0, affine(0.5, v0, 0.5, x));
    ++steps;
  }
  EXPECT_EQ(x, v0);
}

TEST(Projection, CenterEqualToValueFallsBackToNearest) {
  // Pathological case: centre itself sits off-grid (e.g. supplied by a
  // user); projection still produces an admissible point.
  const auto space = int_space();
  const Point p = project(space, Point{5.5, 5.5}, Point{5.5, 5.5});
  EXPECT_TRUE(space.admissible(p));
}

TEST(Projection, ReflectionStaysAdmissibleOnGs2LikeSpace) {
  const ParameterSpace space({
      Parameter::discrete("ntheta", {16.0, 18.0, 20.0, 22.0, 24.0}),
      Parameter::integer("negrid", 8, 32),
      Parameter::discrete("nodes", {4.0, 8.0, 12.0, 16.0}),
  });
  const Point best{20.0, 16.0, 8.0};
  const Point worst{24.0, 31.0, 16.0};
  const Point refl = project(space, best, affine(2.0, best, -1.0, worst));
  EXPECT_TRUE(space.admissible(refl));
}

}  // namespace
}  // namespace protuner::core
