// The in-loop HTTP exporter (net/net_server.h, DESIGN.md §15): the same
// epoll loop that serves binary frames answers plain HTTP/1.0 GETs on the
// same port — a connection whose first four bytes are "GET " is demuxed to
// the exporter, everything else to the frame decoder.
//
// These tests talk to the server the way a scraper would: a raw TCP
// socket, a hand-written request, read-to-EOF (the server closes after one
// response, HTTP/1.0 style).  They validate status lines, the Prometheus
// exposition grammar of /metrics (every non-comment line is
// `name{labels} value`, one HELP/TYPE per family), /healthz flipping to
// 503 while a session is stalled, /sessions JSON, and that scrapes coexist
// with live frame traffic on neighbouring connections.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fixed.h"
#include "harmony/session_manager.h"
#include "net/client.h"
#include "net/net_server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace protuner {
namespace {

using core::Point;

struct HttpFixture {
  obs::Registry registry;
  obs::FlightRecorder flight{256};
  harmony::SessionManager manager;
  std::unique_ptr<net::NetServer> server;
  std::thread loop;

  explicit HttpFixture(net::NetServerOptions options = {}) {
    options.metrics = &registry;
    options.flight = &flight;
    options.poll_interval = std::chrono::milliseconds(1);
    server = std::make_unique<net::NetServer>(manager, options);
    loop = std::thread([this] { server->run(); });
  }

  ~HttpFixture() {
    server->stop();
    loop.join();
  }

  std::shared_ptr<harmony::Server> host(const std::string& name,
                                        std::size_t clients,
                                        harmony::ServerOptions so = {}) {
    so.metrics = &registry;
    so.session = name;
    return manager.create(
        name, std::make_unique<core::FixedStrategy>(Point{1.0, 2.0}),
        clients, so);
  }
};

/// One HTTP/1.0 GET over a fresh socket; returns the full response bytes
/// (headers + body) after the server's close.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

/// True iff `line` matches the Prometheus sample grammar this repo emits:
/// metric_name ['{' key="value" [, ...] '}'] ' ' number.
bool is_prometheus_sample(const std::string& line) {
  std::size_t i = 0;
  auto name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  while (i < line.size() && name_char(line[i])) ++i;
  if (i == 0) return false;
  if (i < line.size() && line[i] == '{') {
    // Scan the label block respecting escaped quotes inside values.
    ++i;
    bool in_string = false;
    for (; i < line.size(); ++i) {
      if (in_string) {
        if (line[i] == '\\') {
          ++i;  // skip the escaped char
        } else if (line[i] == '"') {
          in_string = false;
        }
      } else if (line[i] == '"') {
        in_string = true;
      } else if (line[i] == '}') {
        break;
      }
    }
    if (i >= line.size() || line[i] != '}') return false;
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  if (i >= line.size()) return false;
  // The value: a finite decimal / scientific number, or +Inf/-Inf/NaN.
  const std::string value = line.substr(i);
  if (value == "+Inf" || value == "-Inf" || value == "NaN") return true;
  char* end = nullptr;
  std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

TEST(NetHttp, MetricsEndpointServesWellFormedPrometheus) {
  HttpFixture fx;
  fx.host("scraped", 2);
  // Real traffic first, so the exposition has wire + session families.
  net::HarmonyClient client({.port = fx.server->port()});
  client.attach("scraped", 0);  // one connection multiplexes both ranks
  Point cfg;
  for (int k = 0; k < 5; ++k) {
    for (std::uint32_t r = 0; r < 2; ++r) client.fetch_into(r, cfg);
    for (std::uint32_t r = 0; r < 2; ++r) client.report(r, 1.0 + r);
  }
  client.detach(0);

  const std::string response = http_get(fx.server->port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);

  const std::string page = body_of(response);
  EXPECT_NE(page.find("protuner_net_bytes_in_total"), std::string::npos);
  EXPECT_NE(page.find("protuner_net_fetch_wire_ns"), std::string::npos);
  EXPECT_NE(page.find("session=\"scraped\""), std::string::npos);

  // Every line is either a comment or a grammatical sample, and each
  // family introduces itself exactly once.
  std::istringstream lines(page);
  std::string line;
  int type_fetch_wire = 0;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# ", 0) == 0) {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      if (line.rfind("# TYPE protuner_net_fetch_wire_ns ", 0) == 0) {
        ++type_fetch_wire;
      }
      continue;
    }
    ++samples;
    EXPECT_TRUE(is_prometheus_sample(line)) << "bad sample line: " << line;
  }
  EXPECT_EQ(type_fetch_wire, 1);
  EXPECT_GT(samples, 10);
}

TEST(NetHttp, HealthzSessionsAndUnknownPaths) {
  HttpFixture fx;
  fx.host("alpha", 4);
  fx.host("beta", 2);

  const std::string health = http_get(fx.server->port(), "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << health;
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string sessions = http_get(fx.server->port(), "/sessions");
  EXPECT_EQ(sessions.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(sessions.find("Content-Type: application/json"),
            std::string::npos);
  const std::string json = body_of(sessions);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"clients\":4"), std::string::npos);
  EXPECT_EQ(json.front(), '[');

  // Query strings are ignored; unknown paths 404; the loop survives both.
  EXPECT_EQ(http_get(fx.server->port(), "/healthz?probe=1")
                .rfind("HTTP/1.0 200 OK\r\n", 0),
            0u);
  EXPECT_EQ(http_get(fx.server->port(), "/nope")
                .rfind("HTTP/1.0 404 Not Found\r\n", 0),
            0u);
  EXPECT_EQ(fx.server->decode_errors(), 0u)
      << "HTTP connections must not count as frame decode errors";
}

TEST(NetHttp, HealthzTurns503WhileASessionIsStalled) {
  net::NetServerOptions no;
  no.stall_timeout = std::chrono::duration<double>(0.05);
  HttpFixture fx(no);
  fx.host("wedged", 2);

  // An attached client fetches and then sits on the round forever.
  net::HarmonyClient client({.port = fx.server->port()});
  client.attach("wedged", 0);
  Point cfg;
  client.fetch_into(0, cfg);

  // The watchdog needs the stall window to elapse before it declares.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  std::string health;
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    health = http_get(fx.server->port(), "/healthz");
  } while (health.find("503") == std::string::npos &&
           std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(health.rfind("HTTP/1.0 503 Service Unavailable\r\n", 0), 0u)
      << health;
  EXPECT_EQ(body_of(health), "stalled\n");
  EXPECT_GE(fx.server->stall_dumps(), 1u);
  // The declared stall is visible in the exported counter too.
  const std::string page = body_of(http_get(fx.server->port(), "/metrics"));
  EXPECT_NE(page.find("protuner_stall_dumps_total"), std::string::npos);
  client.close();
}

TEST(NetHttp, ScrapesCoexistWithFrameTraffic) {
  HttpFixture fx;
  auto hosted = fx.host("mixed", 1);
  std::thread scraper([&fx] {
    for (int i = 0; i < 20; ++i) {
      const std::string r = http_get(fx.server->port(), "/metrics");
      EXPECT_NE(r.find("200 OK"), std::string::npos);
    }
  });
  net::HarmonyClient client({.port = fx.server->port()});
  client.attach("mixed", 0);
  Point cfg;
  constexpr std::size_t kRounds = 50;
  for (std::size_t k = 0; k < kRounds; ++k) {
    client.fetch_into(0, cfg);
    client.report(0, 1.0);
  }
  client.detach(0);
  scraper.join();
  EXPECT_EQ(hosted->rounds_completed(), kRounds);
  EXPECT_EQ(fx.server->decode_errors(), 0u);
}

TEST(NetHttp, MalformedRequestLineGets400) {
  HttpFixture fx;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET \r\n\r\n";  // no path token
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.0 400 Bad Request\r\n", 0), 0u)
      << response;
}

}  // namespace
}  // namespace protuner
