// Tests for point-to-point messaging on the SPMD substrate and database
// save/load persistence.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "comm/spmd.h"
#include "gs2/database.h"
#include "gs2/surface.h"

namespace protuner {
namespace {

TEST(CommP2P, RoundTripBetweenTwoRanks) {
  comm::spmd_run(2, [&](comm::Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, {1.0, 2.0, 3.0});
      const auto reply = c.recv();
      EXPECT_EQ(reply, (std::vector<double>{6.0}));
    } else {
      const auto msg = c.recv();
      ASSERT_EQ(msg.size(), 3u);
      c.send(0, {msg[0] + msg[1] + msg[2]});
    }
  });
}

TEST(CommP2P, FifoOrderFromOneSender) {
  comm::spmd_run(2, [&](comm::Communicator& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        c.send(1, {static_cast<double>(i)});
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        const auto msg = c.recv();
        EXPECT_DOUBLE_EQ(msg[0], static_cast<double>(i));
      }
    }
  });
}

TEST(CommP2P, ManyToOneGather) {
  std::atomic<int> sum{0};
  comm::spmd_run(5, [&](comm::Communicator& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        sum += static_cast<int>(c.recv()[0]);
      }
    } else {
      c.send(0, {static_cast<double>(c.rank())});
    }
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3 + 4);
}

TEST(CommP2P, HasMessageProbe) {
  comm::spmd_run(2, [&](comm::Communicator& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.has_message());
      c.barrier();      // rank 1 sends before this barrier completes...
      c.barrier();      // ...and signals with the second barrier
      EXPECT_TRUE(c.has_message());
      (void)c.recv();
    } else {
      c.barrier();
      c.send(0, {42.0});
      c.barrier();
    }
  });
}

TEST(CommP2P, SelfSendWorks) {
  comm::spmd_run(1, [&](comm::Communicator& c) {
    c.send(0, {9.0});
    EXPECT_TRUE(c.has_message());
    EXPECT_DOUBLE_EQ(c.recv()[0], 9.0);
  });
}

// ------------------------------------------------------------- Database I/O

TEST(DatabaseIo, SaveLoadRoundTrip) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const gs2::Database db = gs2::Database::measure(space, surface, {});

  std::stringstream buffer;
  db.save(buffer);
  const gs2::Database loaded = gs2::Database::load(buffer, space);

  EXPECT_EQ(loaded.entries(), db.entries());
  const core::Point probe{16.0, 8.0, 4.0};
  EXPECT_DOUBLE_EQ(*loaded.exact(probe), *db.exact(probe));
  // Interpolated lookups agree too (same entries, same options).
  const core::Point off{16.0, 9.0, 4.0};
  EXPECT_DOUBLE_EQ(loaded.clean_time(off), db.clean_time(off));
}

TEST(DatabaseIo, LoadRejectsArityMismatch) {
  const core::ParameterSpace space({core::Parameter::integer("x", 0, 9)});
  std::stringstream buffer("1.0,2.0,3.0\n");  // 2 coords + value for 1-D
  EXPECT_THROW((void)gs2::Database::load(buffer, space), std::runtime_error);
}

TEST(DatabaseIo, LoadRejectsGarbage) {
  const core::ParameterSpace space({core::Parameter::integer("x", 0, 9)});
  std::stringstream buffer("1.0,banana\n");
  EXPECT_THROW((void)gs2::Database::load(buffer, space), std::runtime_error);
}

TEST(DatabaseIo, LoadSkipsEmptyLines) {
  const core::ParameterSpace space({core::Parameter::integer("x", 0, 9)});
  std::stringstream buffer("1,2.5\n\n3,4.5\n");
  const gs2::Database db = gs2::Database::load(buffer, space);
  EXPECT_EQ(db.entries(), 2u);
  EXPECT_DOUBLE_EQ(*db.exact(core::Point{3.0}), 4.5);
}

TEST(DatabaseIo, RoundTripPreservesFullPrecision) {
  const core::ParameterSpace space({core::Parameter::integer("x", 0, 9)});
  gs2::Database db(space, {});
  db.insert(core::Point{1.0}, 0.12345678901234567);
  std::stringstream buffer;
  db.save(buffer);
  const gs2::Database loaded = gs2::Database::load(buffer, space);
  EXPECT_DOUBLE_EQ(*loaded.exact(core::Point{1.0}), 0.12345678901234567);
}

}  // namespace
}  // namespace protuner
