// Tests for the 2-D slice utilities, AR(1) noise and the tuning report
// formatter.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/simulated_cluster.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/session.h"
#include "core/tuning_report.h"
#include "gs2/slice.h"
#include "gs2/surface.h"
#include "stats/autocorr.h"
#include "util/summary.h"
#include "varmodel/ar1_noise.h"
#include "varmodel/noise_model.h"

namespace protuner {
namespace {

// --------------------------------------------------------------------- slice

TEST(Slice, DimensionsMatchSweptAxes) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const auto s =
      gs2::take_slice(space, surface, space.center(), gs2::kNtheta,
                      gs2::kNodes);
  EXPECT_EQ(s.x_values.size(), space.param(gs2::kNtheta).values().size());
  EXPECT_EQ(s.y_values.size(), space.param(gs2::kNodes).values().size());
  ASSERT_EQ(s.grid.size(), s.x_values.size());
  ASSERT_EQ(s.grid[0].size(), s.y_values.size());
  EXPECT_LE(s.min_value, s.max_value);
}

TEST(Slice, Fig8SliceHasMultipleLocalMinima) {
  const auto space = gs2::gs2_space();
  const gs2::Gs2Surface surface;
  const auto s = gs2::take_slice(space, surface, space.center(),
                                 gs2::kNtheta, gs2::kNodes);
  EXPECT_GE(s.local_minima(), 2u);
  EXPECT_GT(s.max_neighbor_jump(), 0.0);
}

TEST(Slice, SmoothBowlHasOneMinimumAndSmallJumps) {
  const core::ParameterSpace space({core::Parameter::integer("x", 0, 20),
                                    core::Parameter::integer("y", 0, 20)});
  const core::QuadraticLandscape land(core::Point{10.0, 10.0}, 1.0, 0.01);
  const auto s = gs2::take_slice(space, land, space.center(), 0, 1);
  EXPECT_EQ(s.local_minima(), 1u);
}

TEST(Slice, AsciiHasOneRowPerXValue) {
  const core::ParameterSpace space({core::Parameter::integer("x", 0, 4),
                                    core::Parameter::integer("y", 0, 7)});
  const core::QuadraticLandscape land(core::Point{2.0, 3.0}, 1.0, 1.0);
  const auto s = gs2::take_slice(space, land, space.center(), 0, 1);
  const std::string art = s.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
}

TEST(Slice, ContinuousAxisUsesRequestedLevels) {
  const core::ParameterSpace space(
      {core::Parameter::continuous("x", 0.0, 1.0),
       core::Parameter::integer("y", 0, 3)});
  const core::QuadraticLandscape land(core::Point{0.5, 1.0}, 1.0, 1.0);
  const auto s =
      gs2::take_slice(space, land, space.center(), 0, 1, /*levels=*/5);
  EXPECT_EQ(s.x_values.size(), 5u);
}

// ----------------------------------------------------------------- AR1 noise

TEST(Ar1Noise, LongRunMeanMatchesEq7) {
  varmodel::Ar1Config cfg;
  cfg.rho = 0.2;
  cfg.alpha = 2.5;
  const varmodel::Ar1Noise noise(cfg);
  util::Rng rng(1);
  double s = 0.0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) s += noise.sample(4.0, rng);
  EXPECT_NEAR(s / kN, noise.expected(4.0), noise.expected(4.0) * 0.06);
}

TEST(Ar1Noise, TemporallyCorrelated) {
  varmodel::Ar1Config cfg;
  cfg.rho = 0.3;
  cfg.phi = 0.95;
  cfg.level_share = 1.0;  // pure level process: correlation is clean
  const varmodel::Ar1Noise noise(cfg);
  util::Rng rng(2);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = noise.sample(1.0, rng);
  EXPECT_GT(stats::autocorrelation(xs, 1), 0.7);
}

TEST(Ar1Noise, ZeroRhoIsSilent) {
  varmodel::Ar1Config cfg;
  cfg.rho = 0.0;
  const varmodel::Ar1Noise noise(cfg);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(noise.sample(1.0, rng), 0.0);
  }
}

TEST(Ar1Noise, ProStillTunesUnderTemporalCorrelation) {
  const core::ParameterSpace space({core::Parameter::integer("a", 0, 20),
                                    core::Parameter::integer("b", 0, 20)});
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{15.0, 5.0}, 1.0, 0.3);
  varmodel::Ar1Config cfg;
  cfg.rho = 0.25;
  auto noise = std::make_shared<varmodel::Ar1Noise>(cfg);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 8, .seed = 4});
  core::ProOptions opts;
  opts.samples = 3;
  core::ProStrategy pro(space, opts);
  const auto r = core::run_session(pro, machine, {.steps = 250});
  EXPECT_LT(r.best_clean, land->clean_time(space.center()));
}

// -------------------------------------------------------------------- report

TEST(TuningReport, ContainsTheEssentials) {
  const core::ParameterSpace space({core::Parameter::integer("a", 0, 20),
                                    core::Parameter::integer("b", 0, 20)});
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{6.0, 14.0}, 1.0, 0.2);
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 8, .seed = 5});
  core::ProStrategy pro(space, {});
  const auto r = core::run_session(pro, machine, {.steps = 200});

  const std::string report = core::format_tuning_report(space, *land, r);
  EXPECT_NE(report.find("a=6"), std::string::npos);
  EXPECT_NE(report.find("b=14"), std::string::npos);
  EXPECT_NE(report.find("% better"), std::string::npos);
  EXPECT_NE(report.find("converged (certified)"), std::string::npos);
  EXPECT_NE(report.find("sensitivity"), std::string::npos);
  EXPECT_NE(report.find("locally optimal"), std::string::npos);
}

TEST(TuningReport, ReportsNonConvergence) {
  const core::ParameterSpace space({core::Parameter::integer("a", 0, 20),
                                    core::Parameter::integer("b", 0, 20)});
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{6.0, 14.0}, 1.0, 0.2);
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 8, .seed = 6});
  core::ProStrategy pro(space, {});
  const auto r = core::run_session(pro, machine, {.steps = 3});  // too short
  const std::string report = core::format_tuning_report(space, *land, r);
  EXPECT_NE(report.find("did not certify"), std::string::npos);
}

TEST(TuningReport, SensitivityCanBeDisabled) {
  const core::ParameterSpace space({core::Parameter::integer("a", 0, 20),
                                    core::Parameter::integer("b", 0, 20)});
  auto land = std::make_shared<core::QuadraticLandscape>(
      core::Point{5.0, 5.0}, 1.0, 0.2);
  cluster::SimulatedCluster machine(
      land, std::make_shared<varmodel::NoNoise>(), {.ranks = 8, .seed = 7});
  core::ProStrategy pro(space, {});
  const auto r = core::run_session(pro, machine, {.steps = 100});
  core::TuningReportOptions opt;
  opt.include_sensitivity = false;
  const std::string report =
      core::format_tuning_report(space, *land, r, opt);
  EXPECT_EQ(report.find("sensitivity"), std::string::npos);
}

}  // namespace
}  // namespace protuner
