// Allocation discipline and release-mode validation of the simulation hot
// path.
//
// The headline acceptance check for the batched pipeline: once warmed up, a
// steady-state RoundEngine step over a simulated machine performs ZERO heap
// allocations — proposal publication, clean-time lookup, noise draw and
// accounting all run in recycled storage.  Asserted with a counting global
// operator new.  This TU must not be linked into anything else (it replaces
// the global allocator) and is deliberately absent from the TSan test list.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/clean_cache.h"
#include "cluster/simulated_cluster.h"
#include "cluster/trace_cluster.h"
#include "core/annealing.h"
#include "core/compass.h"
#include "core/fixed.h"
#include "core/genetic.h"
#include "core/landscape.h"
#include "core/round_engine.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "harmony/server.h"
#include "harmony/session_manager.h"
#include "net/client.h"
#include "net/net_server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "varmodel/pareto_noise.h"
#include "varmodel/simple_noise.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace protuner {
namespace {

using core::FixedStrategy;
using core::Point;
using core::QuadraticLandscape;
using core::RoundEngine;
using core::RoundEngineOptions;

TEST(StepAllocation, SteadyStateSimulatedClusterStepIsAllocationFree) {
  auto land = std::make_shared<QuadraticLandscape>(Point{4.0, 5.0, 6.0},
                                                   1.0, 0.05);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 16, .seed = 9});
  FixedStrategy fx(Point{3.0, 4.0, 5.0});
  RoundEngineOptions opts;
  opts.width = 16;
  opts.record_series = false;  // the series grows; steady state keeps totals
  RoundEngine engine(fx, opts);
  for (int i = 0; i < 5; ++i) engine.step(machine);  // warm every buffer
  const std::size_t before = allocation_count();
  for (int i = 0; i < 200; ++i) engine.step(machine);
  EXPECT_EQ(allocation_count(), before)
      << "steady-state step allocated on the heap";
  EXPECT_EQ(engine.rounds_completed(), 205u);
}

TEST(StepAllocation, SteadyStateSurvivesFullInstrumentation) {
  // Same steady-state contract with the telemetry stack fully on: session-
  // labelled metrics (counter adds + histogram records per round) and the
  // global tracer recording every engine span.  Instrument resolution and
  // ring creation allocate once, during construction/warm-up; the measured
  // window must stay silent.
  obs::Tracer::global().configure(true, 1);
  auto land = std::make_shared<QuadraticLandscape>(Point{4.0, 5.0, 6.0},
                                                   1.0, 0.05);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.2, 1.7);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 16, .seed = 9});
  FixedStrategy fx(Point{3.0, 4.0, 5.0});
  RoundEngineOptions opts;
  opts.width = 16;
  opts.record_series = false;
  opts.session = "alloc-probe";
  RoundEngine engine(fx, opts);
  for (int i = 0; i < 5; ++i) engine.step(machine);  // warm buffers + ring
  const std::size_t before = allocation_count();
  for (int i = 0; i < 200; ++i) engine.step(machine);
  EXPECT_EQ(allocation_count(), before)
      << "instrumented steady-state step allocated on the heap";
  obs::Tracer::global().configure(false);
  const obs::RegistrySnapshot snap =
      obs::Registry::global().snapshot("session", "alloc-probe");
  const obs::InstrumentSnapshot* rounds =
      snap.find("protuner_rounds_total", "alloc-probe");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->value, 205.0);
}

TEST(StepAllocation, SteadyStateTraceClusterStepIsAllocationFree) {
  auto land = std::make_shared<QuadraticLandscape>(Point{2.0}, 1.0, 0.1);
  cluster::TraceClusterConfig cfg;
  cfg.ranks = 8;
  cfg.seed = 3;
  cluster::TraceCluster machine(land, cfg);
  FixedStrategy fx(Point{1.0});
  RoundEngineOptions opts;
  opts.width = 8;
  opts.record_series = false;
  RoundEngine engine(fx, opts);
  for (int i = 0; i < 5; ++i) engine.step(machine);
  const std::size_t before = allocation_count();
  for (int i = 0; i < 200; ++i) engine.step(machine);
  EXPECT_EQ(allocation_count(), before);
}

TEST(StepAllocation, PaddedEngineSteadyStateIsAllocationFree) {
  // The Harmony-style padded engine copy-assigns best_point() into
  // recycled slots; it must be just as quiet once warm.
  auto land = std::make_shared<QuadraticLandscape>(Point{4.0}, 1.0, 0.05);
  auto noise = std::make_shared<varmodel::ExponentialNoise>(0.1);
  cluster::SimulatedCluster machine(land, noise, {.ranks = 8, .seed = 21});
  FixedStrategy fx(Point{3.0});
  RoundEngineOptions opts;
  opts.width = 8;
  opts.pad_assignment = true;
  opts.record_series = false;
  RoundEngine engine(fx, opts);
  for (int i = 0; i < 5; ++i) engine.step(machine);
  const std::size_t before = allocation_count();
  for (int i = 0; i < 200; ++i) engine.step(machine);
  EXPECT_EQ(allocation_count(), before);
}

TEST(StepAllocation, ServingFetchReportPathIsAllocationFree) {
  // The serving hot path: once a Server's double buffers, rank states and
  // latency instruments are warm, fetch_into + report — including the
  // inline round close, strategy re-proposal and next-round publication —
  // must never touch the heap.  This is what lets the sharded server run
  // at memory-bandwidth speeds instead of malloc-lock speeds under load.
  obs::Registry registry;
  obs::FlightRecorder flight(1024);  // armed: every round records two events
  harmony::ServerOptions so;
  so.metrics = &registry;
  so.record_series = false;  // the cost series grows by design
  so.session = "alloc-serving";
  so.flight = &flight;
  harmony::Server server(std::make_unique<FixedStrategy>(Point{1.0, 2.0}),
                         16, so);
  Point scratch;
  for (int k = 0; k < 5; ++k) {  // warm buffers, scratch and instruments
    for (std::size_t r = 0; r < 16; ++r) {
      server.fetch_into(r, scratch);
      server.report(r, 1.0 + static_cast<double>(r));
    }
  }
  const std::size_t before = allocation_count();
  const std::uint64_t flight_before = flight.recorded();
  for (int k = 0; k < 200; ++k) {
    for (std::size_t r = 0; r < 16; ++r) {
      server.fetch_into(r, scratch);
      server.report(r, 1.0 + static_cast<double>(r));
    }
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state fetch/report allocated on the heap";
  EXPECT_GE(flight.recorded() - flight_before, 400u)
      << "the flight recorder was not actually recording round events";
  EXPECT_EQ(server.rounds_completed(), 205u);
}

TEST(StepAllocation, NetServingFetchReportPathIsAllocationFree) {
  // The same steady-state contract across the wire: encode → send → epoll
  // → decode → try_fetch_into/report → encode reply → decode reply, with
  // BOTH the event-loop thread and the client thread sharing the counted
  // global allocator.  Once connection buffers, scratch frames and
  // instruments are warm, a fetch/report round trip must never touch the
  // heap on either side.
  obs::Registry registry;
  obs::FlightRecorder flight(1024);  // armed on both the session and the loop
  harmony::SessionManager manager;
  harmony::ServerOptions so;
  so.metrics = &registry;
  so.record_series = false;
  so.session = "alloc-net";
  so.flight = &flight;
  auto hosted = manager.create(
      "alloc-net", std::make_unique<FixedStrategy>(Point{1.0, 2.0}), 4, so);
  net::NetServerOptions no;
  no.metrics = &registry;
  no.flight = &flight;
  no.poll_interval = std::chrono::milliseconds(1);
  net::NetServer net(manager, no);
  std::thread loop([&net] { net.run(); });
  {
    net::ClientOptions co;
    co.port = net.port();
    co.metrics = &registry;
    net::HarmonyClient client(co);
    client.attach("alloc-net", 0);
    Point scratch;
    for (int k = 0; k < 5; ++k) {  // warm both sides' buffers
      for (std::uint32_t r = 0; r < 4; ++r) client.fetch_into(r, scratch);
      for (std::uint32_t r = 0; r < 4; ++r) client.report(r, 1.0 + r);
    }
    const std::size_t before = allocation_count();
    for (int k = 0; k < 200; ++k) {
      for (std::uint32_t r = 0; r < 4; ++r) client.fetch_into(r, scratch);
      for (std::uint32_t r = 0; r < 4; ++r) client.report(r, 1.0 + r);
    }
    EXPECT_EQ(allocation_count(), before)
        << "steady-state wire fetch/report allocated on the heap";
    client.detach(0);
  }
  net.stop();
  loop.join();
  EXPECT_EQ(hosted->rounds_completed(), 205u);
}

TEST(StepAllocation, WarmedReferenceInterpolationIsAllocationFree) {
  // interpolate_reference used to materialise an O(N) scratch vector per
  // query; the bounded-heap selection keeps the per-thread scratch at k
  // entries and reuses it, so a warmed query loop must be silent.
  const gs2::Gs2Surface surface;
  const auto space = gs2::gs2_space();
  const gs2::Database db = gs2::Database::measure(space, surface, {});
  const Point q1{16.2, 9.1, 4.7};
  const Point q2{33.3, 17.7, 40.1};
  double acc = db.interpolate_reference(q1);  // warm the scratch heap
  const std::size_t before = allocation_count();
  for (int i = 0; i < 100; ++i) {
    acc += db.interpolate_reference(i % 2 == 0 ? q1 : q2);
  }
  EXPECT_EQ(allocation_count(), before)
      << "warmed interpolate_reference allocated on the heap";
  EXPECT_GT(acc, 0.0);
}

TEST(StepAllocation, RunStepWrapperMatchesRunStepInto) {
  // The allocating wrapper is a thin shim over run_step_into: identical
  // machines must produce bit-identical times through either entry point.
  auto land = std::make_shared<QuadraticLandscape>(Point{1.0, 2.0}, 2.0, 0.5);
  auto noise = std::make_shared<varmodel::ParetoNoise>(0.3, 1.7);
  cluster::SimulatedCluster a(land, noise, {.ranks = 4, .seed = 13});
  cluster::SimulatedCluster b(land, noise, {.ranks = 4, .seed = 13});
  const std::vector<Point> configs(4, Point{0.5, 1.5});
  std::vector<double> into(4);
  for (int s = 0; s < 3; ++s) {
    const std::vector<double> wrapped = a.run_step(configs);
    b.run_step_into({configs.data(), configs.size()},
                    {into.data(), into.size()});
    ASSERT_EQ(wrapped.size(), into.size());
    for (std::size_t i = 0; i < into.size(); ++i) {
      EXPECT_EQ(wrapped[i], into[i]) << "rank " << i << ", step " << s;
    }
  }
}

TEST(StepValidation, NonPositiveCleanTimeThrowsInRelease) {
  // The positivity guard moved out of assert() into the always-on cache
  // recompute: a broken landscape fails loudly in release builds too.
  auto bad = std::make_shared<core::FunctionLandscape>(
      "bad", [](const Point& x) { return x[0] < 0.0 ? -1.0 : 1.0; });
  cluster::SimulatedCluster machine(bad,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 2, .seed = 1});
  std::vector<double> out(2);
  const std::vector<Point> good(2, Point{1.0});
  machine.run_step_into({good.data(), good.size()}, {out.data(), out.size()});
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  const std::vector<Point> evil(2, Point{-1.0});
  EXPECT_THROW(machine.run_step_into({evil.data(), evil.size()},
                                     {out.data(), out.size()}),
               std::domain_error);
  // The machine recovers once the landscape behaves again.
  machine.run_step_into({good.data(), good.size()}, {out.data(), out.size()});
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(StepValidation, TraceClusterRejectsNonPositiveCleanTime) {
  auto bad = std::make_shared<core::FunctionLandscape>(
      "zero", [](const Point&) { return 0.0; });
  cluster::TraceClusterConfig cfg;
  cfg.ranks = 2;
  cluster::TraceCluster machine(bad, cfg);
  std::vector<double> out(2);
  const std::vector<Point> configs(2, Point{0.0});
  EXPECT_THROW(machine.run_step_into({configs.data(), configs.size()},
                                     {out.data(), out.size()}),
               std::domain_error);
}

TEST(CleanTimeCache, ReplaysRepeatsAndTracksLandscapeVersion) {
  // Direct contract check: refresh() misses on first sight, hits on the
  // byte-identical repeat, and misses again when the landscape's version
  // counter moves (gs2::Database::insert bumps it).
  core::ParameterSpace space({core::Parameter::integer("x", 0, 10)});
  auto db = std::make_shared<gs2::Database>(
      space, gs2::DatabaseOptions{.stride = 1, .interpolation_neighbors = 1});
  db->insert(Point{0.0}, 1.0);
  cluster::CleanTimeCache cache;
  const std::vector<Point> configs(3, Point{5.0});
  EXPECT_FALSE(cache.refresh(*db, {configs.data(), configs.size()}));
  EXPECT_DOUBLE_EQ(cache.clean()[0], 1.0);
  EXPECT_TRUE(cache.refresh(*db, {configs.data(), configs.size()}));
  db->insert(Point{6.0}, 42.0);  // nearest neighbour of 5 is now 6
  EXPECT_FALSE(cache.refresh(*db, {configs.data(), configs.size()}))
      << "insert() must invalidate the replay cache";
  EXPECT_DOUBLE_EQ(cache.clean()[0], 42.0);
  // A different assignment shape also misses.
  const std::vector<Point> other(2, Point{5.0});
  EXPECT_FALSE(cache.refresh(*db, {other.data(), other.size()}));
}

TEST(CleanTimeCache, ClusterSeesFreshValuesAfterInsert) {
  // End to end: a converged loop replays cached clean times, yet an
  // insert() into the backing database still reaches the next step.
  core::ParameterSpace space({core::Parameter::integer("x", 0, 10)});
  auto db = std::make_shared<gs2::Database>(
      space, gs2::DatabaseOptions{.stride = 1, .interpolation_neighbors = 1});
  db->insert(Point{0.0}, 1.0);
  cluster::SimulatedCluster machine(db,
                                    std::make_shared<varmodel::NoNoise>(),
                                    {.ranks = 2, .seed = 2});
  std::vector<double> out(2);
  const std::vector<Point> configs(2, Point{5.0});
  for (int s = 0; s < 3; ++s) {
    machine.run_step_into({configs.data(), configs.size()},
                          {out.data(), out.size()});
    EXPECT_DOUBLE_EQ(out[0], 1.0);
  }
  db->insert(Point{6.0}, 42.0);
  machine.run_step_into({configs.data(), configs.size()},
                        {out.data(), out.size()});
  EXPECT_DOUBLE_EQ(out[0], 42.0);
  EXPECT_DOUBLE_EQ(out[1], 42.0);
}

TEST(Strategy, ProposeIntoOverridesAreAllocationFree) {
  // The TuningStrategy base class's propose_into default materialises a
  // fresh StepProposal (and its Points) on every call — an allocation trap
  // for any engine recycling its buffers.  Annealing, genetic and compass
  // override it to copy into the caller's storage; once the buffer and its
  // points are warm, the call must be heap-silent.
  const core::ParameterSpace space({
      core::Parameter::integer("i", 0, 15),
      core::Parameter::continuous("c", -1.0, 1.0),
  });
  const QuadraticLandscape land(Point{7.0, 0.2}, 1.0, 0.1);

  const auto drive = [&](core::TuningStrategy& s, const char* label) {
    s.start(8);
    std::vector<Point> buf;
    std::vector<double> times;
    for (int warm = 0; warm < 12; ++warm) {  // warm capacity and point dims
      s.propose_into(buf);
      times.resize(buf.size());
      for (std::size_t i = 0; i < buf.size(); ++i) {
        times[i] = land.clean_time(buf[i]);
      }
      s.observe(times);
    }
    std::size_t measured = 0;
    for (int step = 0; step < 60; ++step) {
      const std::size_t before = allocation_count();
      s.propose_into(buf);
      measured += allocation_count() - before;
      times.resize(buf.size());
      for (std::size_t i = 0; i < buf.size(); ++i) {
        times[i] = land.clean_time(buf[i]);
      }
      s.observe(times);
    }
    EXPECT_EQ(measured, 0u) << label << " propose_into touched the heap";
  };

  core::AnnealingStrategy annealing(space, {});
  drive(annealing, "annealing");
  core::GeneticStrategy genetic(space, {});
  drive(genetic, "genetic");
  core::CompassStrategy compass(space, {});
  drive(compass, "compass");
}

TEST(Strategy, ProposeIntoMatchesPropose) {
  FixedStrategy a(Point{1.0, 2.0}), b(Point{1.0, 2.0});
  a.start(5);
  b.start(5);
  const std::vector<Point> via_propose = a.propose().configs;
  std::vector<Point> via_into;
  b.propose_into(via_into);
  EXPECT_EQ(via_propose, via_into);
  // Recycled buffers are overwritten completely, never appended to.
  via_into.push_back(Point{9.0});
  b.propose_into(via_into);
  EXPECT_EQ(via_propose, via_into);
}

}  // namespace
}  // namespace protuner
