// White-box tests of PRO's Algorithm 2 state machine: scripted objective
// values force each decision path (expansion accepted, expansion rejected
// after check, reflection accepted, shrink, probe escape, probe certify)
// and the tests assert the resulting simplex and counters.
//
// The landscape trick: a FunctionLandscape whose value is controlled per
// region lets us dictate which comparisons succeed without touching the
// strategy's internals.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/simulated_cluster.h"
#include "core/landscape.h"
#include "core/pro.h"
#include "core/session.h"
#include "varmodel/noise_model.h"

namespace protuner::core {
namespace {

ParameterSpace line_space() {
  return ParameterSpace({Parameter::integer("x", 0, 100)});
}

cluster::SimulatedCluster machine_for(LandscapePtr land, std::size_t ranks) {
  return cluster::SimulatedCluster(
      std::move(land), std::make_shared<varmodel::NoNoise>(),
      {.ranks = ranks, .seed = 1});
}

/// Runs until the first PRO iteration resolves (or `max_steps` elapse).
void run_steps(ProStrategy& pro, StepEvaluator& m, int steps) {
  for (int i = 0; i < steps; ++i) {
    const StepProposal p = pro.propose();
    pro.observe(m.run_step(p.configs));
  }
}

TEST(ProStateMachine, MonotoneSlopeTriggersExpansions) {
  // Strictly decreasing toward x=100: every reflection wins, every
  // expansion check wins -> the simplex should travel by expansions.
  auto land = std::make_shared<FunctionLandscape>(
      "slope", [](const Point& x) { return 200.0 - x[0]; });
  auto m = machine_for(land, 4);
  ProOptions opts;
  opts.stop_at_convergence = false;
  ProStrategy pro(line_space(), opts);
  pro.start(4);
  run_steps(pro, m, 40);
  EXPECT_GT(pro.expansions_accepted(), 0u);
  EXPECT_GT(pro.best_point()[0], 50.0);  // travelled well past the centre
}

TEST(ProStateMachine, BowlAroundCenterTriggersShrinks) {
  // The centre of the region is the optimum: reflections (which move away
  // from the best vertex) never win, so every iteration shrinks.
  auto land = std::make_shared<FunctionLandscape>(
      "bowl", [](const Point& x) {
        return 1.0 + (x[0] - 50.0) * (x[0] - 50.0);
      });
  auto m = machine_for(land, 4);
  ProOptions opts;
  opts.stop_at_convergence = false;
  ProStrategy pro(line_space(), opts);
  pro.start(4);
  run_steps(pro, m, 30);
  EXPECT_GT(pro.shrinks_accepted(), 0u);
  EXPECT_EQ(pro.expansions_accepted(), 0u);
}

TEST(ProStateMachine, ReflectionAcceptedWhenExpansionOvershoots) {
  // A narrow valley: the reflected point (distance d) lands lower, the
  // expansion (distance 2d) overshoots into the far wall, so the expansion
  // check fails and the reflection is accepted.
  auto land = std::make_shared<FunctionLandscape>(
      "valley", [](const Point& x) {
        const double d = x[0] - 56.0;
        return 1.0 + d * d;
      });
  // Start simplex around 50 with offsets reaching ~55: reflections of the
  // low side land near 55-60 (win), expansions near 65-70 (lose).
  auto m = machine_for(land, 4);
  ProOptions opts;
  opts.initial_size = 0.1;  // b = 5 -> vertices at 45 and 55
  opts.stop_at_convergence = false;
  ProStrategy pro(line_space(), opts);
  pro.start(4);
  run_steps(pro, m, 30);
  EXPECT_GT(pro.reflections_accepted(), 0u);
}

TEST(ProStateMachine, ProbeCertifiesTrueLocalMinimum) {
  auto land = std::make_shared<FunctionLandscape>(
      "vshape", [](const Point& x) { return 1.0 + std::abs(x[0] - 50.0); });
  auto m = machine_for(land, 4);
  ProStrategy pro(line_space(), {});
  pro.start(4);
  run_steps(pro, m, 200);
  ASSERT_TRUE(pro.converged());
  EXPECT_EQ(pro.best_point()[0], 50.0);
  EXPECT_GE(pro.probes_run(), 1u);
}

TEST(ProStateMachine, ProbeEscapesFalseMinimumAndContinues) {
  // A plateau trap: the simplex collapses at the centre of a flat shelf,
  // but the probe's right neighbour is strictly better, so the search must
  // escape and eventually certify the true minimum at x = 54.
  auto land = std::make_shared<FunctionLandscape>(
      "shelf", [](const Point& x) {
        const double v = x[0];
        if (v < 50.0) return 10.0 + (50.0 - v);  // left wall
        if (v <= 54.0) return 10.0 - (v - 50.0); // downhill shelf
        return 6.0 + (v - 54.0);                 // rises after 54
      });
  auto m = machine_for(land, 4);
  ProOptions opts;
  opts.initial_size = 0.02;  // tiny simplex: collapses on the shelf fast
  ProStrategy pro(line_space(), opts);
  pro.start(4);
  run_steps(pro, m, 300);
  ASSERT_TRUE(pro.converged());
  EXPECT_EQ(pro.best_point()[0], 54.0);
  EXPECT_GE(pro.probes_run(), 1u);
}

TEST(ProStateMachine, BoundaryOptimumCertifiedWithOneSidedProbe) {
  // Optimum at the lower boundary: the probe has no lower neighbour there
  // (paper: l_i = 0 at a boundary) yet certification must still work.
  auto land = std::make_shared<FunctionLandscape>(
      "edge", [](const Point& x) { return 1.0 + x[0]; });
  auto m = machine_for(land, 4);
  ProStrategy pro(line_space(), {});
  pro.start(4);
  run_steps(pro, m, 300);
  ASSERT_TRUE(pro.converged());
  EXPECT_EQ(pro.best_point()[0], 0.0);
}

TEST(ProStateMachine, IterationsMatchAcceptCounters) {
  auto land = std::make_shared<FunctionLandscape>(
      "mix", [](const Point& x) {
        return 5.0 + 0.1 * (x[0] - 30.0) * (x[0] - 30.0) * 0.01 +
               std::abs(x[0] - 30.0);
      });
  auto m = machine_for(land, 4);
  ProOptions opts;
  opts.stop_at_convergence = false;
  ProStrategy pro(line_space(), opts);
  pro.start(4);
  run_steps(pro, m, 100);
  EXPECT_EQ(pro.iterations(), pro.expansions_accepted() +
                                  pro.reflections_accepted() +
                                  pro.shrinks_accepted());
}

TEST(ProStateMachine, RefreshReactsToDegradedIncumbent) {
  // Mid-run we put a penalty on exactly the current incumbent
  // configuration.  With refresh_best the incumbent's estimate follows the
  // change immediately and the search moves away; with a stale estimate it
  // would keep anchoring on the (now bad) point.
  Point penalized{-1.0};
  double penalty = 0.0;
  auto land = std::make_shared<FunctionLandscape>(
      "shifting", [&](const Point& x) {
        const double base = 1.0 + std::abs(x[0] - 50.0);
        return x == penalized ? base + penalty : base;
      });
  auto m = machine_for(land, 4);
  ProOptions opts;
  opts.stop_at_convergence = false;  // freeze only matters after collapse
  opts.refresh_best = true;
  ProStrategy pro(line_space(), opts);
  pro.start(4);
  run_steps(pro, m, 8);  // partial descent: simplex still alive
  if (pro.converged()) GTEST_SKIP() << "collapsed too early to test";
  penalized = pro.best_point();
  penalty = 100.0;
  run_steps(pro, m, 12);
  EXPECT_NE(pro.best_point(), penalized);
}

TEST(ProStateMachine, ExpansionCheckEvaluatesOnlyOnePointFirst) {
  // Count landscape evaluations per step via a wrapper: during the
  // expansion-check phase the proposal contains a single active candidate
  // (padded with incumbent copies).
  auto land = std::make_shared<FunctionLandscape>(
      "slope", [](const Point& x) { return 200.0 - x[0]; });
  auto m = machine_for(land, 4);
  ProStrategy pro(line_space(), {});
  pro.start(4);
  bool saw_single_candidate_step = false;
  for (int i = 0; i < 20; ++i) {
    const StepProposal p = pro.propose();
    // Count distinct configs: an expansion-check step runs 1 candidate +
    // padding copies of the incumbent.
    std::vector<Point> uniq = p.configs;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    if (uniq.size() == 2 && p.configs.size() == 4) {
      saw_single_candidate_step = true;
    }
    pro.observe(m.run_step(p.configs));
  }
  EXPECT_TRUE(saw_single_candidate_step);
}

}  // namespace
}  // namespace protuner::core
