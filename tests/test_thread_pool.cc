// util::ThreadPool contract: task completion, exception propagation through
// futures, graceful destruction with queued work, and rejection of submits
// after shutdown.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace protuner::util {
namespace {

TEST(ThreadPool, RunsEveryTaskAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  long long expected = 0;
  for (int i = 0; i < 100; ++i) expected += static_cast<long long>(i) * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto after = pool.submit([] { return 8; });
  EXPECT_EQ(after.get(), 8);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  // More slow-ish tasks than workers: most are still queued when the pool
  // is destroyed, and the graceful shutdown must run every one of them.
  auto counter = std::make_shared<std::atomic<int>>(0);
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        counter->fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // destructor: close queue, drain, join
  EXPECT_EQ(counter->load(), kTasks);
}

TEST(ThreadPool, TasksSubmittedFromManyThreads) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&pool, &ran] {
        for (int i = 0; i < 50; ++i) {
          pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); })
              .wait();
        }
      });
    }
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, MoveOnlyResultsAndVoidTasks) {
  ThreadPool pool(2);
  auto uptr = pool.submit([] { return std::make_unique<int>(5); });
  EXPECT_EQ(*uptr.get(), 5);
  std::atomic<bool> flag{false};
  auto v = pool.submit([&flag] { flag = true; });
  v.get();
  EXPECT_TRUE(flag.load());
}

}  // namespace
}  // namespace protuner::util
