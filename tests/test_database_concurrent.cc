// Concurrency hammer for the database's flat-hash memo cache: REPRO_THREADS
// (min 4) threads issue overlapping scalar and batch lookups against one
// shared Database, including simultaneous miss-recompute of the same point.
// Run under -DPROTUNER_SANITIZE=thread this covers the sharded
// shared_mutex read path, the lazy index build race and the epoch-based
// invalidation handshake.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "exp/parallel_runner.h"
#include "gs2/database.h"
#include "gs2/surface.h"
#include "util/rng.h"

namespace protuner::gs2 {
namespace {

unsigned hammer_threads() {
  return std::max(exp::default_threads(), 4u);
}

std::vector<core::Point> off_grid_points(const core::ParameterSpace& space,
                                         std::uint64_t seed, int n) {
  util::Rng rng(seed);
  std::vector<core::Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::Point x(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      x[d] = rng.uniform(space.param(d).lower(), space.param(d).upper());
    }
    pts.push_back(std::move(x));
  }
  return pts;
}

TEST(DatabaseConcurrent, ParallelLookupsMatchSerialValues) {
  const Gs2Surface surface;
  const auto space = gs2_space();
  const Database db = Database::measure(space, surface, {});

  // Expected values from a private, serially-queried twin.
  const Database serial = Database::measure(space, surface, {});
  const std::vector<core::Point> shared_pts = off_grid_points(space, 1, 128);
  std::vector<double> expected;
  expected.reserve(shared_pts.size());
  for (const auto& x : shared_pts) expected.push_back(serial.clean_time(x));

  const unsigned n_threads = hammer_threads();
  std::atomic<int> mismatches{0};
  std::vector<std::jthread> workers;
  for (unsigned t = 0; t < n_threads; ++t) {
    workers.emplace_back([&, t] {
      // Every thread walks the shared points from a different start (all
      // points contested by all threads) plus a private point set.
      for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < shared_pts.size(); ++i) {
          const std::size_t j = (i + t * 7 + static_cast<std::size_t>(round)) %
                                shared_pts.size();
          if (db.clean_time(shared_pts[j]) != expected[j]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      const auto mine = off_grid_points(space, 100 + t, 32);
      for (const auto& x : mine) {
        if (db.clean_time(x) != db.clean_time(x)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  workers.clear();  // join
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(DatabaseConcurrent, SimultaneousMissRecomputeOfSamePoint) {
  const Gs2Surface surface;
  const auto space = gs2_space();
  const unsigned n_threads = hammer_threads();

  // Fresh database per round so the probed point is a genuine miss for
  // every thread; a barrier lines the threads up on the same point so they
  // race through miss -> interpolate -> store together.
  const std::vector<core::Point> pts = off_grid_points(space, 42, 16);
  for (int round = 0; round < 4; ++round) {
    const Database db = Database::measure(space, surface, {});
    std::barrier sync(static_cast<std::ptrdiff_t>(n_threads));
    std::atomic<int> mismatches{0};
    std::vector<std::jthread> workers;
    for (unsigned t = 0; t < n_threads; ++t) {
      workers.emplace_back([&] {
        for (const auto& x : pts) {
          sync.arrive_and_wait();
          const double mine = db.clean_time(x);
          // Interpolation is pure: racing recomputes must agree, and the
          // memoised re-read must return the same bits.
          if (mine != db.clean_time(x) ||
              mine != db.interpolate_uncached(x)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    workers.clear();  // join
    EXPECT_EQ(mismatches.load(), 0) << "round=" << round;
  }
}

TEST(DatabaseConcurrent, ConcurrentBatchAndScalarLookupsAgree) {
  const Gs2Surface surface;
  const auto space = gs2_space();
  const Database db = Database::measure(space, surface, {});
  const Database serial = Database::measure(space, surface, {});

  const std::vector<core::Point> pts = off_grid_points(space, 9, 64);
  std::vector<double> expected;
  expected.reserve(pts.size());
  for (const auto& x : pts) expected.push_back(serial.clean_time(x));

  const unsigned n_threads = hammer_threads();
  std::atomic<int> mismatches{0};
  std::vector<std::jthread> workers;
  for (unsigned t = 0; t < n_threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<double> out(pts.size());
      for (int round = 0; round < 10; ++round) {
        if ((t + static_cast<unsigned>(round)) % 2 == 0) {
          db.clean_times(pts, out);
        } else {
          for (std::size_t i = 0; i < pts.size(); ++i) {
            out[i] = db.clean_time(pts[i]);
          }
        }
        for (std::size_t i = 0; i < pts.size(); ++i) {
          if (out[i] != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  workers.clear();  // join
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace protuner::gs2
