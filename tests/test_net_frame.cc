// Wire-format codec properties (net/frame.h, DESIGN.md §14).
//
// The decoder faces bytes from the network, so the contract under test is
// adversarial: truncated, oversized, garbage-typed, split-across-reads and
// coalesced inputs must each produce a clean verdict — kNeedMore, kFrame
// or kBadFrame — and never a crash, hang or out-of-bounds read.  The fuzz
// cases drive the decoder with seeded random garbage and with random
// corruptions of valid frames; the streaming cases re-deliver a valid
// frame sequence at every possible chunking.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "net/frame.h"
#include "util/rng.h"

namespace protuner {
namespace {

using net::DecodeStatus;
using net::Decoded;
using net::MsgType;

std::vector<std::uint8_t> attach_frame(std::string_view session,
                                       std::uint32_t rank) {
  std::vector<std::uint8_t> out;
  net::append_simple(out, MsgType::kAttach, rank, session);
  return out;
}

TEST(NetFrame, RoundTripsEveryMessageKind) {
  std::vector<std::uint8_t> buf;
  net::append_simple(buf, MsgType::kAttach, 7, "gs2");
  net::append_simple(buf, MsgType::kFetch, 3, {});
  net::append_report(buf, 5, "gs2", 1.25);
  core::Point cfg{2.0, 4.0, 8.0};
  net::append_config(buf, 9, cfg);
  net::append_error(buf, 0, "boom");
  net::append_attach_ack(buf, 7, 64);

  std::size_t off = 0;
  auto next = [&] {
    const Decoded d = net::decode_frame({buf.data() + off, buf.size() - off});
    EXPECT_EQ(d.status, DecodeStatus::kFrame);
    off += d.consumed;
    return d.frame;
  };

  net::Frame f = next();
  EXPECT_EQ(f.type, MsgType::kAttach);
  EXPECT_EQ(f.rank, 7u);
  EXPECT_EQ(f.session, "gs2");
  EXPECT_TRUE(f.body.empty());

  f = next();
  EXPECT_EQ(f.type, MsgType::kFetch);
  EXPECT_EQ(f.rank, 3u);
  EXPECT_TRUE(f.session.empty());

  f = next();
  EXPECT_EQ(f.type, MsgType::kReport);
  double time = 0.0;
  ASSERT_TRUE(net::parse_f64_body(f.body, time));
  EXPECT_DOUBLE_EQ(time, 1.25);

  f = next();
  EXPECT_EQ(f.type, MsgType::kFetch);
  EXPECT_EQ(f.rank, 9u);
  core::Point decoded;
  ASSERT_TRUE(net::parse_config_body(f.body, decoded));
  EXPECT_EQ(decoded, cfg);

  f = next();
  EXPECT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(std::string(f.body.begin(), f.body.end()), "boom");

  f = next();
  EXPECT_EQ(f.type, MsgType::kAttach);
  std::uint32_t clients = 0;
  ASSERT_TRUE(net::parse_u32_body(f.body, clients));
  EXPECT_EQ(clients, 64u);

  EXPECT_EQ(off, buf.size());
}

TEST(NetFrame, EveryTruncationAsksForMoreNeverErrors) {
  const std::vector<std::uint8_t> buf = attach_frame("session-name", 11);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const Decoded d = net::decode_frame({buf.data(), len});
    EXPECT_EQ(d.status, DecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
  }
  EXPECT_EQ(net::decode_frame({buf.data(), buf.size()}).status,
            DecodeStatus::kFrame);
}

TEST(NetFrame, RejectsOversizedLengthFromThePrefixAlone) {
  std::vector<std::uint8_t> buf;
  net::append_u32(buf, static_cast<std::uint32_t>(net::kMaxFrameBytes) + 1);
  // Only the length prefix has arrived; the verdict must not wait for (or
  // try to buffer) a megabyte that is never coming.
  const Decoded d = net::decode_frame({buf.data(), buf.size()});
  EXPECT_EQ(d.status, DecodeStatus::kBadFrame);
  EXPECT_FALSE(d.error.empty());
  // A tighter per-server cap applies the same way.
  std::vector<std::uint8_t> small = attach_frame("s", 0);
  EXPECT_EQ(net::decode_frame({small.data(), small.size()}, 4).status,
            DecodeStatus::kBadFrame);
}

TEST(NetFrame, RejectsBelowMinimumLength) {
  std::vector<std::uint8_t> buf;
  net::append_u32(buf, 7);  // below the 8-byte fixed header remainder
  EXPECT_EQ(net::decode_frame({buf.data(), buf.size()}).status,
            DecodeStatus::kBadFrame);
}

TEST(NetFrame, RejectsGarbageTypeVersionAndSessionOverrun) {
  const std::vector<std::uint8_t> good = attach_frame("abc", 1);
  {
    std::vector<std::uint8_t> bad = good;
    bad[4] = 99;  // version
    EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
              DecodeStatus::kBadFrame);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[5] = 0;  // type below range
    EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
              DecodeStatus::kBadFrame);
    bad[5] = 6;  // type above range
    EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
              DecodeStatus::kBadFrame);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[6] = 0xFF;  // session_len far beyond the frame
    bad[7] = 0xFF;
    EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
              DecodeStatus::kBadFrame);
  }
}

TEST(NetFrame, ReassemblesFramesAtEveryChunking) {
  // A realistic burst: several frames of different kinds back to back.
  std::vector<std::uint8_t> stream;
  net::append_simple(stream, MsgType::kAttach, 0, "chunked");
  core::Point cfg{1.0, 2.0};
  net::append_config(stream, 1, cfg);
  net::append_report(stream, 2, {}, 3.5);
  net::append_simple(stream, MsgType::kDetach, 3, {});

  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    std::vector<std::uint8_t> acc;
    std::vector<MsgType> seen;
    std::size_t fed = 0;
    while (fed < stream.size()) {
      const std::size_t n = std::min(chunk, stream.size() - fed);
      acc.insert(acc.end(), stream.begin() + fed, stream.begin() + fed + n);
      fed += n;
      std::size_t off = 0;
      for (;;) {
        const Decoded d =
            net::decode_frame({acc.data() + off, acc.size() - off});
        ASSERT_NE(d.status, DecodeStatus::kBadFrame)
            << "chunk size " << chunk;
        if (d.status != DecodeStatus::kFrame) break;
        seen.push_back(d.frame.type);
        off += d.consumed;
      }
      acc.erase(acc.begin(), acc.begin() + off);
    }
    ASSERT_EQ(seen.size(), 4u) << "chunk size " << chunk;
    EXPECT_EQ(seen[0], MsgType::kAttach);
    EXPECT_EQ(seen[1], MsgType::kFetch);
    EXPECT_EQ(seen[2], MsgType::kReport);
    EXPECT_EQ(seen[3], MsgType::kDetach);
    EXPECT_TRUE(acc.empty());
  }
}

TEST(NetFrame, CoalescedBufferDecodesAllFramesExactly) {
  std::vector<std::uint8_t> buf;
  constexpr int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) {
    net::append_report(buf, static_cast<std::uint32_t>(i), {}, i * 0.5);
  }
  std::size_t off = 0;
  for (int i = 0; i < kFrames; ++i) {
    const Decoded d = net::decode_frame({buf.data() + off, buf.size() - off});
    ASSERT_EQ(d.status, DecodeStatus::kFrame);
    EXPECT_EQ(d.frame.rank, static_cast<std::uint32_t>(i));
    off += d.consumed;
  }
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(net::decode_frame({buf.data() + off, 0}).status,
            DecodeStatus::kNeedMore);
}

TEST(NetFrame, FuzzRandomBytesNeverCrashOrOverconsume) {
  util::Rng rng(0xF00DF00Du);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = static_cast<std::size_t>(rng() % 256);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    // Greedy decode must terminate: every kFrame consumes > 0 bytes and
    // any other status ends the loop.
    std::size_t off = 0;
    for (;;) {
      const Decoded d =
          net::decode_frame({buf.data() + off, buf.size() - off});
      if (d.status != DecodeStatus::kFrame) break;
      ASSERT_GT(d.consumed, 0u);
      ASSERT_LE(off + d.consumed, buf.size());
      off += d.consumed;
    }
  }
}

TEST(NetFrame, FuzzCorruptedValidFramesDecodeOrRejectCleanly) {
  util::Rng rng(0xBADC0DEu);
  core::Point cfg{1.0, 2.0, 3.0, 4.0};
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> buf;
    net::append_simple(buf, MsgType::kAttach, 1, "fuzzed-session");
    net::append_config(buf, 2, cfg);
    // Corrupt 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      buf[rng() % buf.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    std::size_t off = 0;
    for (;;) {
      const Decoded d =
          net::decode_frame({buf.data() + off, buf.size() - off});
      if (d.status == DecodeStatus::kBadFrame) {
        EXPECT_FALSE(d.error.empty());
        break;
      }
      if (d.status != DecodeStatus::kFrame) break;
      ASSERT_GT(d.consumed, 0u);
      ASSERT_LE(off + d.consumed, buf.size());
      // Whatever survived the corruption, its views stay in bounds.
      const net::Frame& fr = d.frame;
      if (!fr.session.empty()) {
        EXPECT_GE(static_cast<const void*>(fr.session.data()),
                  static_cast<const void*>(buf.data()));
      }
      off += d.consumed;
    }
  }
}

TEST(NetFrame, BodyParsersRejectWrongSizes) {
  std::uint32_t u = 0;
  double f = 0.0;
  core::Point p;
  const std::uint8_t bytes[16] = {};
  EXPECT_FALSE(net::parse_u32_body({bytes, 3}, u));
  EXPECT_FALSE(net::parse_u32_body({bytes, 5}, u));
  EXPECT_TRUE(net::parse_u32_body({bytes, 4}, u));
  EXPECT_FALSE(net::parse_f64_body({bytes, 7}, f));
  EXPECT_TRUE(net::parse_f64_body({bytes, 8}, f));
  // Config body: count must match the payload exactly.
  std::vector<std::uint8_t> body;
  net::append_u32(body, 2);
  net::append_f64(body, 1.0);
  EXPECT_FALSE(net::parse_config_body({body.data(), body.size()}, p));
  net::append_f64(body, 2.0);
  EXPECT_TRUE(net::parse_config_body({body.data(), body.size()}, p));
  EXPECT_EQ(p, (core::Point{1.0, 2.0}));
}

}  // namespace
}  // namespace protuner
