// Wire-format codec properties (net/frame.h, DESIGN.md §14).
//
// The decoder faces bytes from the network, so the contract under test is
// adversarial: truncated, oversized, garbage-typed, split-across-reads and
// coalesced inputs must each produce a clean verdict — kNeedMore, kFrame
// or kBadFrame — and never a crash, hang or out-of-bounds read.  The fuzz
// cases drive the decoder with seeded random garbage and with random
// corruptions of valid frames; the streaming cases re-deliver a valid
// frame sequence at every possible chunking.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "net/frame.h"
#include "net/stats_codec.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace protuner {
namespace {

using net::DecodeStatus;
using net::Decoded;
using net::MsgType;

std::vector<std::uint8_t> attach_frame(std::string_view session,
                                       std::uint32_t rank) {
  std::vector<std::uint8_t> out;
  net::append_simple(out, MsgType::kAttach, rank, session);
  return out;
}

TEST(NetFrame, RoundTripsEveryMessageKind) {
  std::vector<std::uint8_t> buf;
  net::append_simple(buf, MsgType::kAttach, 7, "gs2");
  net::append_simple(buf, MsgType::kFetch, 3, {});
  net::append_report(buf, 5, "gs2", 1.25);
  core::Point cfg{2.0, 4.0, 8.0};
  net::append_config(buf, 9, cfg);
  net::append_error(buf, 0, "boom");
  net::append_attach_ack(buf, 7, 64);

  std::size_t off = 0;
  auto next = [&] {
    const Decoded d = net::decode_frame({buf.data() + off, buf.size() - off});
    EXPECT_EQ(d.status, DecodeStatus::kFrame);
    off += d.consumed;
    return d.frame;
  };

  net::Frame f = next();
  EXPECT_EQ(f.type, MsgType::kAttach);
  EXPECT_EQ(f.rank, 7u);
  EXPECT_EQ(f.session, "gs2");
  EXPECT_TRUE(f.body.empty());

  f = next();
  EXPECT_EQ(f.type, MsgType::kFetch);
  EXPECT_EQ(f.rank, 3u);
  EXPECT_TRUE(f.session.empty());

  f = next();
  EXPECT_EQ(f.type, MsgType::kReport);
  double time = 0.0;
  ASSERT_TRUE(net::parse_f64_body(f.body, time));
  EXPECT_DOUBLE_EQ(time, 1.25);

  f = next();
  EXPECT_EQ(f.type, MsgType::kFetch);
  EXPECT_EQ(f.rank, 9u);
  core::Point decoded;
  ASSERT_TRUE(net::parse_config_body(f.body, decoded));
  EXPECT_EQ(decoded, cfg);

  f = next();
  EXPECT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(std::string(f.body.begin(), f.body.end()), "boom");

  f = next();
  EXPECT_EQ(f.type, MsgType::kAttach);
  std::uint32_t clients = 0;
  ASSERT_TRUE(net::parse_u32_body(f.body, clients));
  EXPECT_EQ(clients, 64u);

  EXPECT_EQ(off, buf.size());
}

TEST(NetFrame, EveryTruncationAsksForMoreNeverErrors) {
  const std::vector<std::uint8_t> buf = attach_frame("session-name", 11);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const Decoded d = net::decode_frame({buf.data(), len});
    EXPECT_EQ(d.status, DecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
  }
  EXPECT_EQ(net::decode_frame({buf.data(), buf.size()}).status,
            DecodeStatus::kFrame);
}

TEST(NetFrame, RejectsOversizedLengthFromThePrefixAlone) {
  std::vector<std::uint8_t> buf;
  net::append_u32(buf, static_cast<std::uint32_t>(net::kMaxFrameBytes) + 1);
  // Only the length prefix has arrived; the verdict must not wait for (or
  // try to buffer) a megabyte that is never coming.
  const Decoded d = net::decode_frame({buf.data(), buf.size()});
  EXPECT_EQ(d.status, DecodeStatus::kBadFrame);
  EXPECT_FALSE(d.error.empty());
  // A tighter per-server cap applies the same way.
  std::vector<std::uint8_t> small = attach_frame("s", 0);
  EXPECT_EQ(net::decode_frame({small.data(), small.size()}, 4).status,
            DecodeStatus::kBadFrame);
}

TEST(NetFrame, RejectsBelowMinimumLength) {
  std::vector<std::uint8_t> buf;
  net::append_u32(buf, 7);  // below the 8-byte fixed header remainder
  EXPECT_EQ(net::decode_frame({buf.data(), buf.size()}).status,
            DecodeStatus::kBadFrame);
}

TEST(NetFrame, RejectsGarbageTypeVersionAndSessionOverrun) {
  const std::vector<std::uint8_t> good = attach_frame("abc", 1);
  {
    std::vector<std::uint8_t> bad = good;
    bad[4] = 99;  // version
    EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
              DecodeStatus::kBadFrame);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[5] = 0;  // type below range
    EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
              DecodeStatus::kBadFrame);
    bad[5] = 7;  // type above the v2 range (6 is kStats, valid)
    EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
              DecodeStatus::kBadFrame);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[6] = 0xFF;  // session_len far beyond the frame
    bad[7] = 0xFF;
    EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
              DecodeStatus::kBadFrame);
  }
}

TEST(NetFrame, TraceTrailerRoundTripsOnEveryTracedEncoder) {
  const net::WireTrace trace{0x1122334455667788ull, 0x99AABBCCDDEEFF00ull};
  std::vector<std::uint8_t> buf;
  net::append_simple(buf, MsgType::kFetch, 2, "t", net::kWireVersion, &trace);
  net::append_report(buf, 3, {}, 1.5, net::kWireVersion, &trace);
  core::Point cfg{2.0, 4.0};
  net::append_config(buf, 4, cfg, net::kWireVersion, &trace);
  net::append_simple(buf, MsgType::kDetach, 5, {});  // untraced control

  std::size_t off = 0;
  auto next = [&] {
    const Decoded d = net::decode_frame({buf.data() + off, buf.size() - off});
    EXPECT_EQ(d.status, DecodeStatus::kFrame);
    off += d.consumed;
    return d.frame;
  };
  for (int i = 0; i < 3; ++i) {
    const net::Frame f = next();
    EXPECT_EQ(f.version, 2);
    ASSERT_TRUE(f.has_trace) << "frame " << i;
    EXPECT_EQ(f.trace.trace_id, trace.trace_id);
    EXPECT_EQ(f.trace.span_id, trace.span_id);
    if (f.type == MsgType::kReport) {
      double time = 0.0;
      ASSERT_TRUE(net::parse_f64_body(f.body, time));
      EXPECT_DOUBLE_EQ(time, 1.5);  // the trailer is not part of the body
    }
    if (f.type == MsgType::kFetch && !f.body.empty()) {
      core::Point decoded;
      ASSERT_TRUE(net::parse_config_body(f.body, decoded));
      EXPECT_EQ(decoded, cfg);
    }
  }
  const net::Frame plain = next();
  EXPECT_EQ(plain.type, MsgType::kDetach);
  EXPECT_FALSE(plain.has_trace);
  EXPECT_EQ(off, buf.size());

  // Truncation with a trailer present still never errors mid-frame.
  std::vector<std::uint8_t> one;
  net::append_report(one, 1, "s", 2.0, net::kWireVersion, &trace);
  for (std::size_t len = 0; len < one.size(); ++len) {
    EXPECT_EQ(net::decode_frame({one.data(), len}).status,
              DecodeStatus::kNeedMore);
  }
}

TEST(NetFrame, Version1FramesStillDecodeWithoutTrailers) {
  // A PR-9 peer's bytes: version 1, types 1..5, no trailer bit.
  std::vector<std::uint8_t> buf;
  net::append_simple(buf, MsgType::kAttach, 7, "legacy", 1);
  net::append_report(buf, 7, {}, 3.25, 1);
  std::size_t off = 0;
  for (int i = 0; i < 2; ++i) {
    const Decoded d = net::decode_frame({buf.data() + off, buf.size() - off});
    ASSERT_EQ(d.status, DecodeStatus::kFrame);
    EXPECT_EQ(d.frame.version, 1);
    EXPECT_FALSE(d.frame.has_trace);
    off += d.consumed;
  }
  EXPECT_EQ(off, buf.size());

  // The encoders drop a trailer requested for a v1 frame (old peers would
  // misparse it as body bytes), and v1 rejects both the trailer bit and
  // the Stats type — they are v2 vocabulary.
  const net::WireTrace trace{1, 2};
  std::vector<std::uint8_t> v1traced;
  net::append_simple(v1traced, MsgType::kFetch, 0, {}, 1, &trace);
  const Decoded d = net::decode_frame({v1traced.data(), v1traced.size()});
  ASSERT_EQ(d.status, DecodeStatus::kFrame);
  EXPECT_FALSE(d.frame.has_trace);

  std::vector<std::uint8_t> bad = attach_frame("abc", 1);
  bad[4] = 1;             // version 1 ...
  bad[5] = 0x80 | 2;      // ... may not set the trailer bit
  EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
            DecodeStatus::kBadFrame);
  bad = attach_frame("abc", 1);
  bad[4] = 1;
  bad[5] = 6;             // kStats does not exist in v1
  EXPECT_EQ(net::decode_frame({bad.data(), bad.size()}).status,
            DecodeStatus::kBadFrame);
}

TEST(NetFrame, StatsBodyRoundTripsThroughTheCodec) {
  obs::RegistrySnapshot snap;
  {
    obs::Registry reg;
    reg.counter("protuner_client_ops_total", "ops", {{"phase", "fetch"}})
        .add(42);
    reg.gauge("protuner_client_depth").set(-3);
    obs::Histogram& h = reg.histogram("protuner_client_ns", "latency");
    h.record(1000.0);
    h.record(3e6);
    snap = reg.snapshot();
  }
  std::vector<std::uint8_t> body;
  net::encode_stats(body, snap);

  // As a full kStats frame through the wire codec.
  std::vector<std::uint8_t> buf;
  net::append_frame(buf, MsgType::kStats, 5, "telemetry",
                    {body.data(), body.size()});
  const Decoded d = net::decode_frame({buf.data(), buf.size()});
  ASSERT_EQ(d.status, DecodeStatus::kFrame);
  EXPECT_EQ(d.frame.type, MsgType::kStats);

  obs::RegistrySnapshot decoded;
  ASSERT_TRUE(net::decode_stats(d.frame.body, decoded));
  ASSERT_EQ(decoded.instruments.size(), snap.instruments.size());
  const obs::InstrumentSnapshot* ops =
      decoded.find("protuner_client_ops_total");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->value, 42.0);
  ASSERT_EQ(ops->labels.size(), 1u);
  EXPECT_EQ(ops->labels[0].first, "phase");
  EXPECT_EQ(ops->labels[0].second, "fetch");
  const obs::InstrumentSnapshot* lat = decoded.find("protuner_client_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, 2u);
  EXPECT_DOUBLE_EQ(lat->hist.max, 3e6);

  // The decoder is defensive: every truncation of a valid body fails
  // cleanly instead of reading out of bounds or throwing.
  for (std::size_t len = 0; len < body.size(); ++len) {
    obs::RegistrySnapshot scratch;
    EXPECT_FALSE(net::decode_stats({body.data(), len}, scratch))
        << "truncated stats body of " << len << " bytes decoded";
  }
}

TEST(NetFrame, StatsDecoderRejectsNonPrometheusIdentifiers) {
  // Names and label keys land verbatim in the /metrics exposition, so the
  // decoder holds them to the Prometheus identifier charset.
  const auto encode_one = [](const std::string& name, const std::string& key) {
    obs::RegistrySnapshot snap;
    obs::InstrumentSnapshot s;
    s.kind = obs::InstrumentKind::kCounter;
    s.name = name;
    if (!key.empty()) s.labels = {{key, "v"}};
    s.value = 1.0;
    snap.instruments.push_back(std::move(s));
    std::vector<std::uint8_t> body;
    net::encode_stats(body, snap);
    return body;
  };
  obs::RegistrySnapshot scratch;
  const auto rejects = [&](const std::string& name, const std::string& key) {
    const std::vector<std::uint8_t> body = encode_one(name, key);
    return !net::decode_stats({body.data(), body.size()}, scratch);
  };
  EXPECT_FALSE(rejects("ok_total", "ok_key"));
  EXPECT_FALSE(rejects("ns:sub_total", "key_2"));
  EXPECT_TRUE(rejects("bad name", ""));
  EXPECT_TRUE(rejects("bad\ntotal 9\ninjected 1", ""));
  EXPECT_TRUE(rejects("bad\"quote", ""));
  EXPECT_TRUE(rejects("9starts_with_digit", ""));
  EXPECT_TRUE(rejects("ok_total", "bad key"));
  EXPECT_TRUE(rejects("ok_total", "k=\"v\"},fake"));
  EXPECT_TRUE(rejects("ok_total", "colons:reserved"));
}

TEST(NetFrame, StatsDecoderRejectsNonIncreasingBucketIndices) {
  // A duplicated bucket index would be last-wins in counts[] while count
  // accumulates every entry, desynchronizing the two.  The encoder walks
  // buckets in order, so strictly-increasing is the only honest stream.
  const auto body_with_buckets =
      [](const std::vector<std::pair<std::uint16_t, std::uint64_t>>& buckets) {
        std::vector<std::uint8_t> body;
        net::append_u32(body, 1);  // one instrument
        body.push_back(2);         // kHistogram
        net::append_u16(body, 4);
        body.insert(body.end(), {'h', '_', 'n', 's'});
        net::append_u16(body, 0);  // empty help
        body.push_back(0);         // no labels
        net::append_u32(body, static_cast<std::uint32_t>(buckets.size()));
        for (const auto& [idx, c] : buckets) {
          net::append_u16(body, idx);
          net::append_u64(body, c);
        }
        net::append_f64(body, 100.0);
        return body;
      };
  obs::RegistrySnapshot snap;
  std::vector<std::uint8_t> ok = body_with_buckets({{3, 1}, {7, 2}});
  ASSERT_TRUE(net::decode_stats({ok.data(), ok.size()}, snap));
  EXPECT_EQ(snap.instruments[0].hist.count, 3u);
  std::vector<std::uint8_t> dup = body_with_buckets({{3, 1}, {3, 2}});
  EXPECT_FALSE(net::decode_stats({dup.data(), dup.size()}, snap));
  std::vector<std::uint8_t> desc = body_with_buckets({{7, 2}, {3, 1}});
  EXPECT_FALSE(net::decode_stats({desc.data(), desc.size()}, snap));
}

TEST(NetFrame, StatsDeltaSubtractsCountersAndCarriesLevels) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("ops_total");
  obs::Gauge& g = reg.gauge("depth");
  obs::Histogram& h = reg.histogram("lat_ns");
  c.add(10);
  g.set(4);
  h.record(100.0);
  const obs::RegistrySnapshot first = reg.snapshot();
  c.add(5);
  g.set(2);
  h.record(100.0);
  h.record(900.0);
  const obs::RegistrySnapshot second = reg.snapshot();

  const obs::RegistrySnapshot delta = net::stats_delta(second, first);
  const obs::InstrumentSnapshot* ops = delta.find("ops_total");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->value, 5.0) << "counters ship as deltas";
  const obs::InstrumentSnapshot* depth = delta.find("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 2.0) << "gauges ship as levels";
  const obs::InstrumentSnapshot* lat = delta.find("lat_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, 2u) << "buckets ship as deltas";
  EXPECT_DOUBLE_EQ(lat->hist.max, 900.0);

  // A quiet period yields an empty delta — nothing to push.
  const obs::RegistrySnapshot quiet = net::stats_delta(second, second);
  EXPECT_TRUE(quiet.instruments.empty());
}

TEST(NetFrame, ReassemblesFramesAtEveryChunking) {
  // A realistic burst: several frames of different kinds back to back.
  std::vector<std::uint8_t> stream;
  net::append_simple(stream, MsgType::kAttach, 0, "chunked");
  core::Point cfg{1.0, 2.0};
  net::append_config(stream, 1, cfg);
  net::append_report(stream, 2, {}, 3.5);
  net::append_simple(stream, MsgType::kDetach, 3, {});

  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    std::vector<std::uint8_t> acc;
    std::vector<MsgType> seen;
    std::size_t fed = 0;
    while (fed < stream.size()) {
      const std::size_t n = std::min(chunk, stream.size() - fed);
      acc.insert(acc.end(), stream.begin() + fed, stream.begin() + fed + n);
      fed += n;
      std::size_t off = 0;
      for (;;) {
        const Decoded d =
            net::decode_frame({acc.data() + off, acc.size() - off});
        ASSERT_NE(d.status, DecodeStatus::kBadFrame)
            << "chunk size " << chunk;
        if (d.status != DecodeStatus::kFrame) break;
        seen.push_back(d.frame.type);
        off += d.consumed;
      }
      acc.erase(acc.begin(), acc.begin() + off);
    }
    ASSERT_EQ(seen.size(), 4u) << "chunk size " << chunk;
    EXPECT_EQ(seen[0], MsgType::kAttach);
    EXPECT_EQ(seen[1], MsgType::kFetch);
    EXPECT_EQ(seen[2], MsgType::kReport);
    EXPECT_EQ(seen[3], MsgType::kDetach);
    EXPECT_TRUE(acc.empty());
  }
}

TEST(NetFrame, CoalescedBufferDecodesAllFramesExactly) {
  std::vector<std::uint8_t> buf;
  constexpr int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) {
    net::append_report(buf, static_cast<std::uint32_t>(i), {}, i * 0.5);
  }
  std::size_t off = 0;
  for (int i = 0; i < kFrames; ++i) {
    const Decoded d = net::decode_frame({buf.data() + off, buf.size() - off});
    ASSERT_EQ(d.status, DecodeStatus::kFrame);
    EXPECT_EQ(d.frame.rank, static_cast<std::uint32_t>(i));
    off += d.consumed;
  }
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(net::decode_frame({buf.data() + off, 0}).status,
            DecodeStatus::kNeedMore);
}

TEST(NetFrame, FuzzRandomBytesNeverCrashOrOverconsume) {
  util::Rng rng(0xF00DF00Du);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = static_cast<std::size_t>(rng() % 256);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    // Greedy decode must terminate: every kFrame consumes > 0 bytes and
    // any other status ends the loop.
    std::size_t off = 0;
    for (;;) {
      const Decoded d =
          net::decode_frame({buf.data() + off, buf.size() - off});
      if (d.status != DecodeStatus::kFrame) break;
      ASSERT_GT(d.consumed, 0u);
      ASSERT_LE(off + d.consumed, buf.size());
      off += d.consumed;
    }
  }
}

TEST(NetFrame, FuzzCorruptedValidFramesDecodeOrRejectCleanly) {
  util::Rng rng(0xBADC0DEu);
  core::Point cfg{1.0, 2.0, 3.0, 4.0};
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> buf;
    net::append_simple(buf, MsgType::kAttach, 1, "fuzzed-session");
    net::append_config(buf, 2, cfg);
    // Corrupt 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      buf[rng() % buf.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    std::size_t off = 0;
    for (;;) {
      const Decoded d =
          net::decode_frame({buf.data() + off, buf.size() - off});
      if (d.status == DecodeStatus::kBadFrame) {
        EXPECT_FALSE(d.error.empty());
        break;
      }
      if (d.status != DecodeStatus::kFrame) break;
      ASSERT_GT(d.consumed, 0u);
      ASSERT_LE(off + d.consumed, buf.size());
      // Whatever survived the corruption, its views stay in bounds.
      const net::Frame& fr = d.frame;
      if (!fr.session.empty()) {
        EXPECT_GE(static_cast<const void*>(fr.session.data()),
                  static_cast<const void*>(buf.data()));
      }
      off += d.consumed;
    }
  }
}

TEST(NetFrame, BodyParsersRejectWrongSizes) {
  std::uint32_t u = 0;
  double f = 0.0;
  core::Point p;
  const std::uint8_t bytes[16] = {};
  EXPECT_FALSE(net::parse_u32_body({bytes, 3}, u));
  EXPECT_FALSE(net::parse_u32_body({bytes, 5}, u));
  EXPECT_TRUE(net::parse_u32_body({bytes, 4}, u));
  EXPECT_FALSE(net::parse_f64_body({bytes, 7}, f));
  EXPECT_TRUE(net::parse_f64_body({bytes, 8}, f));
  // Config body: count must match the payload exactly.
  std::vector<std::uint8_t> body;
  net::append_u32(body, 2);
  net::append_f64(body, 1.0);
  EXPECT_FALSE(net::parse_config_body({body.data(), body.size()}, p));
  net::append_f64(body, 2.0);
  EXPECT_TRUE(net::parse_config_body({body.data(), body.size()}, p));
  EXPECT_EQ(p, (core::Point{1.0, 2.0}));
}

}  // namespace
}  // namespace protuner
