// Tests for parameter declarations and the admissible region.
#include <gtest/gtest.h>

#include <vector>

#include "core/parameter_space.h"
#include "util/rng.h"

namespace protuner::core {
namespace {

TEST(Parameter, ContinuousAdmissibility) {
  const auto p = Parameter::continuous("x", 0.0, 10.0);
  EXPECT_TRUE(p.admissible(0.0));
  EXPECT_TRUE(p.admissible(3.7));
  EXPECT_TRUE(p.admissible(10.0));
  EXPECT_FALSE(p.admissible(-0.1));
  EXPECT_FALSE(p.admissible(10.1));
}

TEST(Parameter, IntegerAdmissibility) {
  const auto p = Parameter::integer("n", 2, 8);
  EXPECT_TRUE(p.admissible(2.0));
  EXPECT_TRUE(p.admissible(5.0));
  EXPECT_FALSE(p.admissible(5.5));
  EXPECT_FALSE(p.admissible(9.0));
}

TEST(Parameter, DiscreteSetSortedAndDeduplicated) {
  const auto p = Parameter::discrete("d", {8.0, 2.0, 4.0, 4.0});
  EXPECT_EQ(p.values(), (std::vector<double>{2.0, 4.0, 8.0}));
  EXPECT_DOUBLE_EQ(p.lower(), 2.0);
  EXPECT_DOUBLE_EQ(p.upper(), 8.0);
  EXPECT_TRUE(p.admissible(4.0));
  EXPECT_FALSE(p.admissible(3.0));
}

TEST(Parameter, FloorCeilOnIntegerGrid) {
  const auto p = Parameter::integer("n", 0, 10);
  EXPECT_DOUBLE_EQ(p.floor_value(3.7), 3.0);
  EXPECT_DOUBLE_EQ(p.ceil_value(3.2), 4.0);
  EXPECT_DOUBLE_EQ(p.floor_value(-5.0), 0.0);   // clamps
  EXPECT_DOUBLE_EQ(p.ceil_value(99.0), 10.0);   // clamps
}

TEST(Parameter, FloorCeilOnDiscreteSet) {
  const auto p = Parameter::discrete("d", {2.0, 4.0, 8.0, 16.0});
  EXPECT_DOUBLE_EQ(p.floor_value(7.0), 4.0);
  EXPECT_DOUBLE_EQ(p.ceil_value(7.0), 8.0);
  EXPECT_DOUBLE_EQ(p.floor_value(4.0), 4.0);
  EXPECT_DOUBLE_EQ(p.ceil_value(4.0), 4.0);
}

TEST(Parameter, NeighborsOnIntegerGrid) {
  const auto p = Parameter::integer("n", 0, 5);
  EXPECT_DOUBLE_EQ(p.neighbor_above(2.0), 3.0);
  EXPECT_DOUBLE_EQ(p.neighbor_below(2.0), 1.0);
  EXPECT_DOUBLE_EQ(p.neighbor_above(5.0), 5.0);  // boundary: itself
  EXPECT_DOUBLE_EQ(p.neighbor_below(0.0), 0.0);
}

TEST(Parameter, NeighborsOnDiscreteSet) {
  const auto p = Parameter::discrete("d", {1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(p.neighbor_above(10.0), 100.0);
  EXPECT_DOUBLE_EQ(p.neighbor_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(p.neighbor_above(100.0), 100.0);
}

TEST(Parameter, NearestPicksCloserSide) {
  const auto p = Parameter::discrete("d", {0.0, 10.0});
  EXPECT_DOUBLE_EQ(p.nearest(4.0), 0.0);
  EXPECT_DOUBLE_EQ(p.nearest(6.0), 10.0);
  EXPECT_DOUBLE_EQ(p.nearest(5.0), 0.0);  // tie goes low
}

TEST(ParameterSpace, CenterIsAdmissible) {
  const ParameterSpace space({
      Parameter::continuous("c", 0.0, 1.0),
      Parameter::integer("i", 0, 9),
      Parameter::discrete("d", {1.0, 2.0, 7.0}),
  });
  const Point c = space.center();
  EXPECT_TRUE(space.admissible(c));
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  // Integer mid of [0,9] is 4.5 -> snapped to 4 or 5.
  EXPECT_TRUE(c[1] == 4.0 || c[1] == 5.0);
  // Discrete mid of [1,7] is 4 -> nearest in {1,2,7} is 2.
  EXPECT_DOUBLE_EQ(c[2], 2.0);
}

TEST(ParameterSpace, AdmissibleRejectsWrongArityAndValues) {
  const ParameterSpace space({Parameter::integer("i", 0, 5)});
  EXPECT_FALSE(space.admissible(Point{1.0, 2.0}));
  EXPECT_FALSE(space.admissible(Point{1.5}));
  EXPECT_TRUE(space.admissible(Point{1.0}));
}

TEST(ParameterSpace, SnapNearestProducesAdmissible) {
  const ParameterSpace space({
      Parameter::integer("i", 0, 9),
      Parameter::discrete("d", {4.0, 8.0, 16.0}),
  });
  const Point snapped = space.snap_nearest(Point{3.6, 11.0});
  EXPECT_TRUE(space.admissible(snapped));
  EXPECT_DOUBLE_EQ(snapped[0], 4.0);
  EXPECT_DOUBLE_EQ(snapped[1], 8.0);
}

TEST(ParameterSpace, RandomPointsAreAdmissibleAndCoverAxes) {
  const ParameterSpace space({
      Parameter::continuous("c", -1.0, 1.0),
      Parameter::integer("i", 0, 3),
      Parameter::discrete("d", {1.0, 2.0}),
  });
  util::Rng rng(17);
  bool saw_low_d = false, saw_high_d = false;
  for (int i = 0; i < 500; ++i) {
    const Point x = space.random_point(rng);
    ASSERT_TRUE(space.admissible(x));
    saw_low_d |= (x[2] == 1.0);
    saw_high_d |= (x[2] == 2.0);
  }
  EXPECT_TRUE(saw_low_d);
  EXPECT_TRUE(saw_high_d);
}

}  // namespace
}  // namespace protuner::core
